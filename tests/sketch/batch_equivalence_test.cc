// Batch/single equivalence: UpdateBatch must leave every sketch's linear
// state bit-identical to the equivalent sequence of Update calls, for any
// chunking of the stream.  This is the contract that lets ProcessStream
// drive whole passes through the batched kernels (linear_sketch.h), and it
// must survive any future kernel rewrite.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/gnp_sketch.h"
#include "core/gsum.h"
#include "core/one_pass_hh.h"
#include "core/recursive_sketch.h"
#include "core/two_pass_hh.h"
#include "gfunc/catalog.h"
#include "sketch/ams.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/linear_sketch.h"
#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

// A random turnstile stream: Zipf base frequencies plus churn (matched
// +d/-d pairs), shuffled.
Stream MakeTurnstileStream(uint64_t seed, uint64_t domain = 1 << 12,
                           size_t items = 800) {
  Rng rng(seed);
  StreamShapeOptions shape;
  shape.churn_pairs = 400;
  return MakeZipfWorkload(domain, items, 1.1, 5000, shape, rng).stream;
}

// Feeds `stream` through sketch `a` one update at a time and through `b` in
// chunks of every size in `chunks`.
template <typename SketchT>
void DriveBoth(SketchT& single, SketchT& batched, const Stream& stream) {
  for (const Update& u : stream.updates()) single.Update(u.item, u.delta);
  size_t chunk = 1;
  size_t consumed = 0;
  const std::vector<Update>& ups = stream.updates();
  // Varying chunk sizes (1, 2, 4, ... then the tail) exercises every batch
  // boundary case, including n == 0 at the end.
  while (consumed < ups.size()) {
    const size_t n = std::min(chunk, ups.size() - consumed);
    batched.UpdateBatch(ups.data() + consumed, n);
    consumed += n;
    chunk *= 2;
  }
  batched.UpdateBatch(ups.data(), 0);  // empty batch is a no-op
}

TEST(BatchEquivalenceTest, CountSketchCountersBitIdentical) {
  const Stream stream = MakeTurnstileStream(101);
  Rng r1(7), r2(7);
  CountSketch single(CountSketchOptions{5, 256}, r1);
  CountSketch batched(CountSketchOptions{5, 256}, r2);
  DriveBoth(single, batched, stream);
  EXPECT_EQ(single.counters(), batched.counters());
}

TEST(BatchEquivalenceTest, CountMinCountersBitIdentical) {
  const Stream stream = MakeTurnstileStream(102);
  Rng r1(8), r2(8);
  CountMinSketch single(CountMinOptions{5, 256}, r1);
  CountMinSketch batched(CountMinOptions{5, 256}, r2);
  DriveBoth(single, batched, stream);
  EXPECT_EQ(single.counters(), batched.counters());
}

TEST(BatchEquivalenceTest, AmsSumsBitIdentical) {
  const Stream stream = MakeTurnstileStream(103);
  Rng r1(9), r2(9);
  AmsSketch single(AmsOptions{16, 5}, r1);
  AmsSketch batched(AmsOptions{16, 5}, r2);
  DriveBoth(single, batched, stream);
  EXPECT_EQ(single.sums(), batched.sums());
}

TEST(BatchEquivalenceTest, GnpCountersBitIdentical) {
  const Stream stream = MakeTurnstileStream(104);
  GnpSketchOptions options;
  options.substreams = 16;
  options.trials = 8;
  options.id_bits = 12;
  Rng r1(10), r2(10);
  GnpHeavyHitter single(options, r1);
  GnpHeavyHitter batched(options, r2);
  DriveBoth(single, batched, stream);
  EXPECT_EQ(single.counters(), batched.counters());
}

TEST(BatchEquivalenceTest, TopKInnerCountersBitIdentical) {
  const Stream stream = MakeTurnstileStream(105);
  Rng r1(11), r2(11);
  CountSketchTopK single(CountSketchOptions{5, 256}, 16, r1);
  CountSketchTopK batched(CountSketchOptions{5, 256}, 16, r2);
  DriveBoth(single, batched, stream);
  // The linear state must match exactly; the candidate set is maintenance
  // metadata and may legitimately differ by refresh timing, but both
  // decodes read the same counters.
  EXPECT_EQ(single.sketch().counters(), batched.sketch().counters());
}

TEST(BatchEquivalenceTest, TopKBatchedStillFindsPlantedHeavyHitter) {
  Rng rng(106);
  ItemId heavy = 0;
  const Workload w = MakePlantedHeavyHitterWorkload(
      1 << 12, 500, 20, 100000, StreamShapeOptions{}, rng, &heavy);
  Rng r1(12);
  CountSketchTopK topk(CountSketchOptions{5, 512}, 10, r1);
  ProcessStream(topk, w.stream);  // batched path
  const auto top = topk.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, heavy);
}

TEST(BatchEquivalenceTest, DefaultUpdateBatchForwardsToUpdate) {
  // A sketch without an override gets the base-class loop.
  const Stream stream = MakeTurnstileStream(107, 1 << 8, 50);
  ExactHeavyHitterSketch single, batched;
  DriveBoth(single, batched, stream);
  const GFunctionPtr g = MakePower(2.0);
  EXPECT_EQ(single.Cover(*g).size(), batched.Cover(*g).size());
}

TEST(BatchEquivalenceTest, RecursiveSketchLevelRoutingMatches) {
  const Stream stream = MakeTurnstileStream(108);
  GHeavyHitterFactory factory = [](int /*level*/, Rng& /*rng*/) {
    return std::make_unique<ExactHeavyHitterSketch>();
  };
  Rng r1(13), r2(13);
  RecursiveGSum single(6, factory, r1);
  RecursiveGSum batched(6, factory, r2);
  for (const Update& u : stream.updates()) single.Update(u.item, u.delta);
  stream.ForEachBatch(64, [&](const Update* ups, size_t n) {
    batched.UpdateBatch(ups, n);
  });
  const GFunctionPtr g = MakePower(2.0);
  EXPECT_DOUBLE_EQ(single.Estimate(*g), batched.Estimate(*g));
}

TEST(BatchEquivalenceTest, MergeFromAfterBatchMatchesConcatenatedStream) {
  // Shard the stream, feed each shard through the batched path into its own
  // same-seed sketch, merge, and compare against one sketch that processed
  // the concatenation -- linearity end to end.
  const Stream left = MakeTurnstileStream(109);
  const Stream right = MakeTurnstileStream(110);
  Stream both(left.domain());
  both.AppendStream(left);
  both.AppendStream(right);

  Rng ra(21), rb(21), rc(21);
  CountSketch shard_a(CountSketchOptions{5, 512}, ra);
  CountSketch shard_b(CountSketchOptions{5, 512}, rb);
  CountSketch reference(CountSketchOptions{5, 512}, rc);
  ProcessStream(shard_a, left);
  ProcessStream(shard_b, right);
  ProcessStream(reference, both);
  shard_a.MergeFrom(shard_b);
  EXPECT_EQ(shard_a.counters(), reference.counters());

  Rng rd(22), re(22), rf(22);
  AmsSketch ams_a(AmsOptions{8, 5}, rd);
  AmsSketch ams_b(AmsOptions{8, 5}, re);
  AmsSketch ams_ref(AmsOptions{8, 5}, rf);
  ProcessStream(ams_a, left);
  ProcessStream(ams_b, right);
  ProcessStream(ams_ref, both);
  ams_a.MergeFrom(ams_b);
  EXPECT_EQ(ams_a.sums(), ams_ref.sums());

  Rng rg(23), rh(23), ri(23);
  CountMinSketch cm_a(CountMinOptions{5, 512}, rg);
  CountMinSketch cm_b(CountMinOptions{5, 512}, rh);
  CountMinSketch cm_ref(CountMinOptions{5, 512}, ri);
  ProcessStream(cm_a, left);
  ProcessStream(cm_b, right);
  ProcessStream(cm_ref, both);
  cm_a.MergeFrom(cm_b);
  EXPECT_EQ(cm_a.counters(), cm_ref.counters());
}

TEST(BatchEquivalenceTest, TwoPassTabulationBatchMatchesSingle) {
  // Pass 2 of the two-pass algorithm is a linear tabulator over the frozen
  // candidate list; its batched kernel (run-cached binary search) must
  // leave the exact counts bit-identical to the per-update loop for any
  // chunking.  Both instances see the identical pass-1 stream through the
  // batched path so their frozen candidate lists agree, then pass 2 is
  // driven single vs chunked.
  const Stream stream = MakeTurnstileStream(112);
  TwoPassHHOptions options;
  options.count_sketch = {5, 512};
  options.candidates = 24;
  Rng r1(14), r2(14);
  TwoPassHeavyHitter single(options, r1);
  TwoPassHeavyHitter batched(options, r2);
  ProcessStream(single, stream);
  ProcessStream(batched, stream);
  single.AdvancePass();
  batched.AdvancePass();
  ASSERT_EQ(single.candidate_ids(), batched.candidate_ids());
  DriveBoth(single, batched, stream);  // pass-2 tabulation, single vs chunks
  const GFunctionPtr g = MakePower(2.0);
  const GCover cs = single.Cover(*g);
  const GCover cb = batched.Cover(*g);
  ASSERT_EQ(cs.size(), cb.size());
  for (size_t i = 0; i < cs.size(); ++i) {
    EXPECT_EQ(cs[i].item, cb[i].item);
    EXPECT_EQ(cs[i].frequency, cb[i].frequency);
    EXPECT_DOUBLE_EQ(cs[i].g_value, cb[i].g_value);
  }
}

TEST(BatchEquivalenceTest, ExactFrequencySketchBitIdentical) {
  // The exact baseline's batched kernel (run-cached hash slot) must agree
  // with the sequential loop, including zero-pruning of cancelled items.
  const Stream stream = MakeTurnstileStream(113);
  ExactFrequencySketch single, batched;
  DriveBoth(single, batched, stream);
  EXPECT_EQ(single.Frequencies(), batched.Frequencies());
  // And the free function (now routed through the batched sketch) agrees.
  EXPECT_EQ(ExactFrequencies(stream), batched.Frequencies());
}

TEST(BatchEquivalenceTest, GSumBatchedPipelineMatchesSequential) {
  // End-to-end: the one-pass g-sum estimator fed via Update versus
  // UpdateBatch must produce the identical estimate (same covers from the
  // same counters; TopK refresh timing differences may only affect which
  // borderline candidates survive, so compare the final estimates loosely
  // and the sketch spaces exactly).
  const Stream stream = MakeTurnstileStream(111, 1 << 10, 300);
  GSumOptions options;
  options.passes = 1;
  options.cs_buckets = 512;
  options.candidates = 48;
  options.repetitions = 3;
  GSumEstimator sequential(MakePower(2.0), 1 << 10, options);
  GSumEstimator batched(MakePower(2.0), 1 << 10, options);
  for (const Update& u : stream.updates()) {
    sequential.Update(u.item, u.delta);
  }
  stream.ForEachBatch(kStreamBatchSize, [&](const Update* ups, size_t n) {
    batched.UpdateBatch(ups, n);
  });
  const double a = sequential.Estimate();
  const double b = batched.Estimate();
  EXPECT_NEAR(a, b, 0.05 * std::abs(a) + 1e-9);
}

}  // namespace
}  // namespace gstream
