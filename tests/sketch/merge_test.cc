// Mergeability of the linear sketches: the distributed-aggregation story
// (map shards independently, merge, decode once).  Linearity means a
// merged sketch must be *identical* to one that saw the concatenated
// stream -- these tests check bit-exact agreement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "core/gnp_sketch.h"
#include "sketch/ams.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

constexpr uint64_t kSeed = 0x3e46e;

Workload ShardableWorkload() {
  Rng rng(11);
  return MakeUniformWorkload(1 << 12, 2000, 1, 500, StreamShapeOptions{},
                             rng);
}

TEST(MergeTest, CountSketchShardedEqualsMonolithic) {
  const Workload w = ShardableWorkload();
  const CountSketchOptions geometry{5, 512};

  Rng mono_rng(kSeed);
  CountSketch monolithic(geometry, mono_rng);
  ProcessStream(monolithic, w.stream);

  // Four shards, same seed (hence same hash functions), disjoint slices.
  std::vector<CountSketch> shards;
  for (int s = 0; s < 4; ++s) {
    Rng rng(kSeed);
    shards.emplace_back(geometry, rng);
  }
  const auto& updates = w.stream.updates();
  for (size_t i = 0; i < updates.size(); ++i) {
    shards[i % 4].Update(updates[i].item, updates[i].delta);
  }
  for (int s = 1; s < 4; ++s) shards[0].MergeFrom(shards[s]);

  for (const auto& [item, value] : w.frequencies) {
    EXPECT_EQ(shards[0].Estimate(item), monolithic.Estimate(item));
  }
  EXPECT_DOUBLE_EQ(shards[0].EstimateF2(), monolithic.EstimateF2());
}

TEST(MergeTest, AmsShardedEqualsMonolithic) {
  const Workload w = ShardableWorkload();
  const AmsOptions geometry{16, 5};

  Rng mono_rng(kSeed);
  AmsSketch monolithic(geometry, mono_rng);
  ProcessStream(monolithic, w.stream);

  Rng r1(kSeed), r2(kSeed);
  AmsSketch a(geometry, r1), b(geometry, r2);
  const auto& updates = w.stream.updates();
  for (size_t i = 0; i < updates.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(updates[i].item, updates[i].delta);
  }
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), monolithic.EstimateF2());
}

TEST(MergeTest, MergeIsCommutativeInEffect) {
  const CountSketchOptions geometry{3, 64};
  Rng r1(kSeed), r2(kSeed), r3(kSeed), r4(kSeed);
  CountSketch ab(geometry, r1), ba(geometry, r2);
  CountSketch a(geometry, r3), b(geometry, r4);
  a.Update(1, 10);
  b.Update(2, 20);
  ab.Update(1, 10);
  ab.MergeFrom(b);
  ba.Update(2, 20);
  ba.MergeFrom(a);
  for (ItemId i : {1u, 2u, 3u}) {
    EXPECT_EQ(ab.Estimate(i), ba.Estimate(i));
  }
}

TEST(MergeDeathTest, CountSketchRejectsDifferentSeeds) {
  const CountSketchOptions geometry{3, 64};
  Rng r1(1), r2(2);
  CountSketch a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, CountSketchRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  CountSketch a(CountSketchOptions{3, 64}, r1);
  CountSketch b(CountSketchOptions{3, 128}, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, AmsRejectsDifferentSeeds) {
  const AmsOptions geometry{8, 3};
  Rng r1(1), r2(2);
  AmsSketch a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, AmsRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  AmsSketch a(AmsOptions{8, 3}, r1);
  AmsSketch b(AmsOptions{8, 5}, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, CountMinRejectsDifferentSeeds) {
  const CountMinOptions geometry{3, 64};
  Rng r1(1), r2(2);
  CountMinSketch a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, CountMinRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  CountMinSketch a(CountMinOptions{3, 64}, r1);
  CountMinSketch b(CountMinOptions{3, 128}, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

// The candidate-union merge property: merging CountSketchTopK shards must
// leave (1) the inner counters bit-identical to a monolithic sketch
// (linearity) and (2) the candidate set equal to the k strongest of the
// candidate union under EstimateAll against the merged counters -- the
// documented merge rule, recomputed here independently through the public
// decode so any drift in MergeFrom's internals is caught.  Random shard
// splits; merges are folded left, maintaining the expected set by the same
// rule at every step.
TEST(MergeTest, TopKCandidateUnionMergeMatchesEstimateAllOverUnion) {
  const CountSketchOptions geometry{5, 512};
  constexpr size_t kK = 16;
  for (uint64_t trial = 0; trial < 8; ++trial) {
    Rng workload_rng(9100 + trial);
    StreamShapeOptions shape;
    shape.churn_pairs = 200;
    const Workload w = MakeZipfWorkload(1 << 12, 600, 1.2, 8000, shape,
                                        workload_rng);
    const size_t num_shards = 2 + trial % 4;  // 2..5 shards

    std::vector<CountSketchTopK> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      Rng rng(kSeed);
      shards.emplace_back(geometry, kK, rng);
    }
    // Random split of the stream across the shards.
    Rng split_rng(7700 + trial);
    for (const Update& u : w.stream.updates()) {
      shards[split_rng.UniformUint64(num_shards)].Update(u.item, u.delta);
    }
    Rng mono_rng(kSeed);
    CountSketch monolithic(geometry, mono_rng);
    ProcessStream(monolithic, w.stream);

    // Fold-merge, maintaining the expected candidate set independently:
    // after each merge it must equal the k strongest of (previous expected
    // set union incoming shard's set) under merged-counter estimates.
    std::vector<ItemId> expected = shards[0].CandidateItems();
    for (size_t s = 1; s < num_shards; ++s) {
      std::vector<ItemId> unioned = expected;
      const std::vector<ItemId> incoming = shards[s].CandidateItems();
      unioned.insert(unioned.end(), incoming.begin(), incoming.end());
      std::sort(unioned.begin(), unioned.end());
      unioned.erase(std::unique(unioned.begin(), unioned.end()),
                    unioned.end());

      shards[0].MergeFrom(shards[s]);

      const std::vector<int64_t> estimates =
          shards[0].sketch().EstimateAll(unioned);
      std::vector<std::pair<ItemId, int64_t>> ranked;
      for (size_t i = 0; i < unioned.size(); ++i) {
        ranked.emplace_back(unioned[i], estimates[i]);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  const int64_t aa = std::llabs(a.second);
                  const int64_t bb = std::llabs(b.second);
                  if (aa != bb) return aa > bb;
                  return a.first < b.first;
                });
      if (ranked.size() > kK) ranked.resize(kK);
      expected.clear();
      for (const auto& [item, est] : ranked) expected.push_back(item);
      std::sort(expected.begin(), expected.end());

      EXPECT_EQ(shards[0].CandidateItems(), expected)
          << "trial " << trial << " after merging shard " << s;
      // TopK must agree entry-for-entry with the independently ranked
      // union decode (same estimates, same order, same truncation).
      const auto top = shards[0].TopK();
      ASSERT_EQ(top.size(), ranked.size());
      for (size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].first, ranked[i].first);
        EXPECT_EQ(top[i].second, ranked[i].second);
      }
    }
    // Linearity: merged counters == monolithic counters, so the final
    // estimates are whole-stream estimates.
    EXPECT_EQ(shards[0].sketch().counters(), monolithic.counters())
        << "trial " << trial;
  }
}

TEST(MergeDeathTest, TopKRejectsMismatchedK) {
  const CountSketchOptions geometry{3, 64};
  Rng r1(kSeed), r2(kSeed);  // same seed: the sketches themselves match
  CountSketchTopK a(geometry, /*k=*/8, r1);
  CountSketchTopK b(geometry, /*k=*/16, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, TopKRejectsDifferentSeeds) {
  const CountSketchOptions geometry{3, 64};
  Rng r1(1), r2(2);
  CountSketchTopK a(geometry, 8, r1), b(geometry, 8, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, TopKRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  CountSketchTopK a(CountSketchOptions{3, 64}, 8, r1);
  CountSketchTopK b(CountSketchOptions{3, 128}, 8, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

// The g_np sketch's signed-bit sums are linear per trial, so same-seed
// shards must merge to exactly the monolithic counter state -- pinned by
// independent recomputation (elementwise shard sum) AND against a
// monolithic sketch, over random shard splits and fold-merges, mirroring
// the candidate-union property test below.
TEST(MergeTest, GnpShardedEqualsMonolithicOverRandomSplits) {
  GnpSketchOptions geometry;
  geometry.substreams = 32;
  geometry.trials = 12;
  geometry.id_bits = 12;
  for (uint64_t trial = 0; trial < 4; ++trial) {
    Rng workload_rng(9300 + trial);
    StreamShapeOptions shape;
    shape.churn_pairs = 150;
    const Workload w = MakeZipfWorkload(1 << 12, 400, 1.2, 4000, shape,
                                        workload_rng);
    const size_t num_shards = 2 + trial % 4;  // 2..5 shards

    Rng mono_rng(kSeed);
    GnpHeavyHitter monolithic(geometry, mono_rng);
    ProcessStream(monolithic, w.stream);

    std::vector<GnpHeavyHitter> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      Rng rng(kSeed);
      shards.emplace_back(geometry, rng);
    }
    Rng split_rng(8800 + trial);
    for (const Update& u : w.stream.updates()) {
      shards[split_rng.UniformUint64(num_shards)].Update(u.item, u.delta);
    }
    // Independent recomputation: the shard counters must sum, elementwise,
    // to the monolithic counters (linearity) before any merge runs.
    std::vector<int64_t> summed(monolithic.counters().size(), 0);
    for (const GnpHeavyHitter& shard : shards) {
      for (size_t i = 0; i < summed.size(); ++i) {
        summed[i] += shard.counters()[i];
      }
    }
    EXPECT_EQ(summed, monolithic.counters()) << "trial " << trial;

    for (size_t s = 1; s < num_shards; ++s) shards[0].MergeFrom(shards[s]);
    EXPECT_EQ(shards[0].counters(), monolithic.counters())
        << "trial " << trial;
    EXPECT_EQ(shards[0].Fingerprint(), monolithic.Fingerprint());
  }
}

TEST(MergeDeathTest, GnpRejectsDifferentSeeds) {
  GnpSketchOptions geometry;
  geometry.substreams = 16;
  geometry.trials = 8;
  geometry.id_bits = 10;
  Rng r1(1), r2(2);
  GnpHeavyHitter a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, GnpRejectsDifferentSubstreams) {
  GnpSketchOptions narrow, wide;
  narrow.substreams = 16;
  wide.substreams = 32;
  Rng r1(kSeed), r2(kSeed);
  GnpHeavyHitter a(narrow, r1), b(wide, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, GnpRejectsDifferentTrials) {
  GnpSketchOptions few, many;
  few.trials = 8;
  many.trials = 16;
  Rng r1(kSeed), r2(kSeed);
  GnpHeavyHitter a(few, r1), b(many, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, GnpTypeErasedMergeRejectsForeignType) {
  // The GHeavyHitterSketch-level merge must die on a dynamic-type
  // mismatch, not reinterpret another sketch's counters.
  GnpSketchOptions geometry;
  Rng r1(kSeed);
  GnpHeavyHitter gnp(geometry, r1);
  ExactHeavyHitterSketch exact;
  GHeavyHitterSketch& erased = gnp;
  EXPECT_DEATH(erased.MergeFrom(exact), "GSTREAM_CHECK");
}

TEST(MergeTest, CountMinShardedEqualsMonolithic) {
  // Happy-path companion to the death tests above: same-seed Count-Min
  // shards merge to exactly the monolithic sketch.
  const Workload w = ShardableWorkload();
  const CountMinOptions geometry{5, 512};
  Rng mono_rng(kSeed);
  CountMinSketch monolithic(geometry, mono_rng);
  ProcessStream(monolithic, w.stream);

  Rng r1(kSeed), r2(kSeed);
  CountMinSketch a(geometry, r1), b(geometry, r2);
  const auto& updates = w.stream.updates();
  for (size_t i = 0; i < updates.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(updates[i].item, updates[i].delta);
  }
  a.MergeFrom(b);
  for (const auto& [item, value] : w.frequencies) {
    EXPECT_EQ(a.EstimateMedian(item), monolithic.EstimateMedian(item));
  }
}

}  // namespace
}  // namespace gstream
