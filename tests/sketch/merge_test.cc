// Mergeability of the linear sketches: the distributed-aggregation story
// (map shards independently, merge, decode once).  Linearity means a
// merged sketch must be *identical* to one that saw the concatenated
// stream -- these tests check bit-exact agreement.

#include <gtest/gtest.h>

#include "sketch/ams.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

constexpr uint64_t kSeed = 0x3e46e;

Workload ShardableWorkload() {
  Rng rng(11);
  return MakeUniformWorkload(1 << 12, 2000, 1, 500, StreamShapeOptions{},
                             rng);
}

TEST(MergeTest, CountSketchShardedEqualsMonolithic) {
  const Workload w = ShardableWorkload();
  const CountSketchOptions geometry{5, 512};

  Rng mono_rng(kSeed);
  CountSketch monolithic(geometry, mono_rng);
  ProcessStream(monolithic, w.stream);

  // Four shards, same seed (hence same hash functions), disjoint slices.
  std::vector<CountSketch> shards;
  for (int s = 0; s < 4; ++s) {
    Rng rng(kSeed);
    shards.emplace_back(geometry, rng);
  }
  const auto& updates = w.stream.updates();
  for (size_t i = 0; i < updates.size(); ++i) {
    shards[i % 4].Update(updates[i].item, updates[i].delta);
  }
  for (int s = 1; s < 4; ++s) shards[0].MergeFrom(shards[s]);

  for (const auto& [item, value] : w.frequencies) {
    EXPECT_EQ(shards[0].Estimate(item), monolithic.Estimate(item));
  }
  EXPECT_DOUBLE_EQ(shards[0].EstimateF2(), monolithic.EstimateF2());
}

TEST(MergeTest, AmsShardedEqualsMonolithic) {
  const Workload w = ShardableWorkload();
  const AmsOptions geometry{16, 5};

  Rng mono_rng(kSeed);
  AmsSketch monolithic(geometry, mono_rng);
  ProcessStream(monolithic, w.stream);

  Rng r1(kSeed), r2(kSeed);
  AmsSketch a(geometry, r1), b(geometry, r2);
  const auto& updates = w.stream.updates();
  for (size_t i = 0; i < updates.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(updates[i].item, updates[i].delta);
  }
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), monolithic.EstimateF2());
}

TEST(MergeTest, MergeIsCommutativeInEffect) {
  const CountSketchOptions geometry{3, 64};
  Rng r1(kSeed), r2(kSeed), r3(kSeed), r4(kSeed);
  CountSketch ab(geometry, r1), ba(geometry, r2);
  CountSketch a(geometry, r3), b(geometry, r4);
  a.Update(1, 10);
  b.Update(2, 20);
  ab.Update(1, 10);
  ab.MergeFrom(b);
  ba.Update(2, 20);
  ba.MergeFrom(a);
  for (ItemId i : {1u, 2u, 3u}) {
    EXPECT_EQ(ab.Estimate(i), ba.Estimate(i));
  }
}

TEST(MergeDeathTest, CountSketchRejectsDifferentSeeds) {
  const CountSketchOptions geometry{3, 64};
  Rng r1(1), r2(2);
  CountSketch a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, CountSketchRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  CountSketch a(CountSketchOptions{3, 64}, r1);
  CountSketch b(CountSketchOptions{3, 128}, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, AmsRejectsDifferentSeeds) {
  const AmsOptions geometry{8, 3};
  Rng r1(1), r2(2);
  AmsSketch a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, AmsRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  AmsSketch a(AmsOptions{8, 3}, r1);
  AmsSketch b(AmsOptions{8, 5}, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, CountMinRejectsDifferentSeeds) {
  const CountMinOptions geometry{3, 64};
  Rng r1(1), r2(2);
  CountMinSketch a(geometry, r1), b(geometry, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeDeathTest, CountMinRejectsDifferentGeometry) {
  Rng r1(kSeed), r2(kSeed);
  CountMinSketch a(CountMinOptions{3, 64}, r1);
  CountMinSketch b(CountMinOptions{3, 128}, r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(MergeTest, CountMinShardedEqualsMonolithic) {
  // Happy-path companion to the death tests above: same-seed Count-Min
  // shards merge to exactly the monolithic sketch.
  const Workload w = ShardableWorkload();
  const CountMinOptions geometry{5, 512};
  Rng mono_rng(kSeed);
  CountMinSketch monolithic(geometry, mono_rng);
  ProcessStream(monolithic, w.stream);

  Rng r1(kSeed), r2(kSeed);
  CountMinSketch a(geometry, r1), b(geometry, r2);
  const auto& updates = w.stream.updates();
  for (size_t i = 0; i < updates.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(updates[i].item, updates[i].delta);
  }
  a.MergeFrom(b);
  for (const auto& [item, value] : w.frequencies) {
    EXPECT_EQ(a.EstimateMedian(item), monolithic.EstimateMedian(item));
  }
}

}  // namespace
}  // namespace gstream
