#include "sketch/ams.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

TEST(AmsTest, SingleItemF2Exact) {
  Rng rng(1);
  AmsSketch ams(AmsOptions{8, 5}, rng);
  ams.Update(3, 100);
  // One item: every estimator holds +-100, squares to exactly 10000.
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), 10000.0);
}

TEST(AmsTest, DeletionsCancel) {
  Rng rng(2);
  AmsSketch ams(AmsOptions{8, 5}, rng);
  ams.Update(3, 100);
  ams.Update(3, -100);
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), 0.0);
}

// Accuracy sweep: relative error shrinks as group_size grows.
class AmsAccuracySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AmsAccuracySweep, MedianWithinExpectedBand) {
  const size_t group_size = GetParam();
  Rng data_rng(77);
  const Workload w = MakeZipfWorkload(1 << 12, 1500, 1.0, 5000,
                                      StreamShapeOptions{}, data_rng);
  const double truth = ExactMoment(w.frequencies, 2.0);
  // Median over independent sketch draws should concentrate within
  // ~3/sqrt(group_size) relative error.
  Rng sketch_rng(88);
  std::vector<double> errors;
  for (int trial = 0; trial < 9; ++trial) {
    AmsSketch ams(AmsOptions{group_size, 5}, sketch_rng);
    ProcessStream(ams, w.stream);
    errors.push_back(std::fabs(ams.EstimateF2() - truth) / truth);
  }
  std::sort(errors.begin(), errors.end());
  const double median_err = errors[errors.size() / 2];
  EXPECT_LT(median_err, 3.0 / std::sqrt(static_cast<double>(group_size)));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AmsAccuracySweep,
                         ::testing::Values(4, 16, 64, 256));

TEST(AmsTest, TurnstileChurnDoesNotBias) {
  Rng rng(3);
  StreamShapeOptions options;
  options.churn_pairs = 2000;
  options.churn_magnitude = 50;
  const Workload w =
      MakeUniformWorkload(1 << 10, 400, 1, 100, options, rng);
  const double truth = ExactMoment(w.frequencies, 2.0);
  AmsSketch ams(AmsOptions{64, 7}, rng);
  ProcessStream(ams, w.stream);
  EXPECT_NEAR(ams.EstimateF2() / truth, 1.0, 0.5);
}

TEST(AmsTest, SpaceBytesAccounted) {
  Rng rng(4);
  AmsSketch ams(AmsOptions{16, 5}, rng);
  // 80 counters + 80 sign hashes (4 words each).
  EXPECT_EQ(ams.SpaceBytes(),
            80 * sizeof(int64_t) + 80 * 4 * sizeof(uint64_t));
}

TEST(AmsTest, DeterministicGivenSeed) {
  Rng r1(5), r2(5);
  AmsSketch a(AmsOptions{16, 5}, r1), b(AmsOptions{16, 5}, r2);
  for (ItemId i = 0; i < 200; ++i) {
    a.Update(i, static_cast<int64_t>(i % 13));
    b.Update(i, static_cast<int64_t>(i % 13));
  }
  EXPECT_DOUBLE_EQ(a.EstimateF2(), b.EstimateF2());
}

}  // namespace
}  // namespace gstream
