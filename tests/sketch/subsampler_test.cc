#include "sketch/subsampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gstream {
namespace {

TEST(SubsamplerTest, LevelZeroAlwaysIncludesEverything) {
  Rng rng(1);
  NestedSubsampler sampler(10, rng);
  for (ItemId i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sampler.InLevel(i, 0));
    EXPECT_GE(sampler.LevelOf(i), 0);
    EXPECT_LE(sampler.LevelOf(i), 10);
  }
}

TEST(SubsamplerTest, SamplesAreNested) {
  Rng rng(2);
  NestedSubsampler sampler(12, rng);
  for (ItemId i = 0; i < 2000; ++i) {
    const int level = sampler.LevelOf(i);
    for (int l = 0; l <= 12; ++l) {
      EXPECT_EQ(sampler.InLevel(i, l), l <= level);
    }
  }
}

TEST(SubsamplerTest, LevelSizesHalveGeometrically) {
  Rng rng(3);
  NestedSubsampler sampler(16, rng);
  const uint64_t n = 1 << 16;
  std::vector<size_t> level_counts(17, 0);
  for (ItemId i = 0; i < n; ++i) {
    const int level = sampler.LevelOf(i);
    for (int l = 0; l <= level; ++l) ++level_counts[static_cast<size_t>(l)];
  }
  for (int l = 1; l <= 8; ++l) {
    const double expected = static_cast<double>(n) / std::exp2(l);
    EXPECT_NEAR(static_cast<double>(level_counts[static_cast<size_t>(l)]),
                expected, 6.0 * std::sqrt(expected))
        << "level " << l;
  }
}

TEST(SubsamplerTest, ZeroLevelsDegenerate) {
  Rng rng(4);
  NestedSubsampler sampler(0, rng);
  EXPECT_EQ(sampler.LevelOf(123), 0);
}

TEST(SubsamplerTest, DeterministicGivenSeed) {
  Rng r1(7), r2(7);
  NestedSubsampler a(8, r1), b(8, r2);
  for (ItemId i = 0; i < 500; ++i) {
    EXPECT_EQ(a.LevelOf(i), b.LevelOf(i));
  }
}

TEST(SubsamplerTest, IndependentDrawsDiffer) {
  Rng rng(9);
  NestedSubsampler a(8, rng), b(8, rng);
  int diff = 0;
  for (ItemId i = 0; i < 500; ++i) {
    if (a.LevelOf(i) != b.LevelOf(i)) ++diff;
  }
  EXPECT_GT(diff, 100);
}

TEST(SubsamplerTest, SpaceIsPerLevelHashes) {
  Rng rng(10);
  NestedSubsampler sampler(5, rng);
  EXPECT_EQ(sampler.SpaceBytes(), 5 * 2 * sizeof(uint64_t));
}

}  // namespace
}  // namespace gstream
