#include "sketch/count_min.h"

#include <gtest/gtest.h>

#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

TEST(CountMinTest, NeverUnderestimatesInsertionOnly) {
  Rng rng(1);
  StreamShapeOptions options;
  options.unit_updates = true;
  const Workload w =
      MakeUniformWorkload(1 << 10, 300, 1, 40, options, rng);
  ASSERT_TRUE(w.stream.IsInsertionOnly());
  CountMinSketch cm(CountMinOptions{5, 256}, rng);
  ProcessStream(cm, w.stream);
  for (const auto& [item, value] : w.frequencies) {
    EXPECT_GE(cm.EstimateMin(item), value);
  }
}

TEST(CountMinTest, OverestimateBoundedByF1OverB) {
  Rng rng(2);
  const Workload w = MakeUniformWorkload(1 << 12, 2000, 1, 50,
                                         StreamShapeOptions{}, rng);
  const size_t buckets = 1024;
  CountMinSketch cm(CountMinOptions{5, buckets}, rng);
  ProcessStream(cm, w.stream);
  const double f1 = ExactMoment(w.frequencies, 1.0);
  const double bound = 4.0 * f1 / static_cast<double>(buckets);
  size_t violations = 0;
  for (const auto& [item, value] : w.frequencies) {
    if (static_cast<double>(cm.EstimateMin(item) - value) > bound) {
      ++violations;
    }
  }
  EXPECT_LE(violations, w.frequencies.size() / 50);
}

TEST(CountMinTest, MedianDecodeHandlesDeletions) {
  Rng rng(3);
  CountMinSketch cm(CountMinOptions{7, 512}, rng);
  cm.Update(5, 1000);
  cm.Update(5, -400);
  for (ItemId i = 100; i < 150; ++i) cm.Update(i, 2);
  EXPECT_NEAR(static_cast<double>(cm.EstimateMedian(5)), 600.0, 10.0);
}

TEST(CountMinTest, SingleItemExact) {
  Rng rng(4);
  CountMinSketch cm(CountMinOptions{5, 64}, rng);
  cm.Update(9, 77);
  EXPECT_EQ(cm.EstimateMin(9), 77);
  EXPECT_EQ(cm.EstimateMedian(9), 77);
}

TEST(CountMinTest, SpaceBytesAccounted) {
  Rng rng(5);
  CountMinSketch cm(CountMinOptions{3, 128}, rng);
  EXPECT_GE(cm.SpaceBytes(), 3 * 128 * sizeof(int64_t));
}

TEST(CountMinDeathTest, RejectsZeroBuckets) {
  Rng rng(6);
  EXPECT_DEATH(CountMinSketch(CountMinOptions{3, 0}, rng), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
