// Tier-equivalence pins for the runtime-dispatched SIMD hash kernels
// (util/simd/): every ISA tier must agree with the scalar reference tier
// bit-for-bit -- raw kernel outputs, sketch counters, estimates,
// fingerprints, and the merge pins -- because Mersenne-61 arithmetic is
// exact in every tier and all outputs are canonicalized.  Tiers the
// build or host cannot run are skipped, so the suite passes on scalar-only
// hosts and degrades to the scalar-vs-scalar case under
// -DGSTREAM_SIMD=OFF.  ForceIsaTier overrides the GSTREAM_FORCE_ISA
// environment variable, so this file always exercises every runnable
// tier; the CI forced-scalar leg additionally re-runs the batch
// equivalence / merge / engine pins with the env override active, which
// is what pins the dispatcher's override path end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/gnp_sketch.h"
#include "sketch/ams.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/linear_sketch.h"
#include "stream/generators.h"
#include "util/simd/simd_dispatch.h"
#include "util/simd/simd_scalar_ref.h"

namespace gstream {
namespace {

using simd::IsaTier;

Stream MakeTurnstileStream(uint64_t seed, uint64_t domain = 1 << 12,
                           size_t items = 800) {
  Rng rng(seed);
  StreamShapeOptions shape;
  shape.churn_pairs = 400;
  return MakeZipfWorkload(domain, items, 1.1, 6000, shape, rng).stream;
}

class SimdDispatchTest : public ::testing::TestWithParam<IsaTier> {
 protected:
  void SetUp() override {
    if (!simd::IsaTierAvailable(GetParam())) {
      GTEST_SKIP() << "tier " << simd::IsaTierName(GetParam())
                   << " not available on this build/host";
    }
  }
  // Restore CPUID dispatch and the default scatter policy so later tests
  // see the production configuration.
  void TearDown() override {
    simd::ForceScatterDispatch(simd::ScatterDispatch::kDefault);
    simd::ClearForcedIsaTier();
  }
};

TEST_P(SimdDispatchTest, ForceAndClearRoundTrip) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  EXPECT_EQ(simd::ActiveIsaTier(), GetParam());
  simd::ClearForcedIsaTier();
  // After clearing, the active tier is whatever detection (plus any
  // GSTREAM_FORCE_ISA override) picks -- it must at least be available.
  EXPECT_TRUE(simd::IsaTierAvailable(simd::ActiveIsaTier()));
}

// Raw kernel outputs against the scalar reference functions, on sizes that
// exercise the lane tails (n % 8 != 0) and both fastrange forms
// (power-of-two and general ranges).
TEST_P(SimdDispatchTest, KernelOpsMatchScalarReference) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  const simd::SimdOps& ops = simd::Ops();
  Rng rng(0x5eed);
  const size_t n = 517;  // odd: every kernel runs its tail path
  std::vector<Update> ups(n);
  for (Update& u : ups) {
    u.item = rng.UniformUint64(~uint64_t{0});  // full 64-bit keys
    u.delta = static_cast<int64_t>(rng.UniformInt(-5, 5));
  }
  const uint64_t c0 = rng.UniformUint64(kMersenne61);
  const uint64_t c1 = rng.UniformUint64(kMersenne61);
  const uint64_t c2 = rng.UniformUint64(kMersenne61);
  const uint64_t c3 = rng.UniformUint64(kMersenne61);

  // Reference powers and hashes from the scalar functions.
  std::vector<uint64_t> rxm(n), rx2(n), rx3(n), rh(n);
  std::vector<int64_t> rdelta(n);
  simd::ScalarPrepareBatch(ups.data(), n, rxm.data(), rx2.data(), rx3.data(),
                           rdelta.data());
  simd::ScalarEval4Row(c0, c1, c2, c3, rxm.data(), rx2.data(), rx3.data(), n,
                       rh.data());

  // Tier powers: lazy representatives may differ, canonical hashes must
  // not.
  std::vector<uint64_t> xm(n), x2(n), x3(n), h(n);
  std::vector<int64_t> delta(n);
  ops.prepare_batch(ups.data(), n, xm.data(), x2.data(), x3.data(),
                    delta.data());
  EXPECT_EQ(delta, rdelta);
  ops.eval4_row(c0, c1, c2, c3, xm.data(), x2.data(), x3.data(), n, h.data());
  EXPECT_EQ(h, rh);

  // prepare_batch2 / field_powers feed the same canonical chain.
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = ups[i].item;
  ops.prepare_batch2(ups.data(), n, xm.data(), delta.data());
  std::vector<uint64_t> e2(n), re2(n);
  ops.eval2_row(c0, c1, xm.data(), n, e2.data());
  simd::ScalarEval2Row(c0, c1, rxm.data(), n, re2.data());
  EXPECT_EQ(e2, re2);
  ops.field_powers(keys.data(), n, xm.data(), x2.data(), x3.data());
  ops.eval4_row(c0, c1, c2, c3, xm.data(), x2.data(), x3.data(), n, h.data());
  EXPECT_EQ(h, rh);

  for (const uint64_t range : {uint64_t{1024}, uint64_t{997}, uint64_t{1}}) {
    std::vector<uint32_t> idx(n), ridx(n);
    ops.fastrange(rh.data(), n, range, idx.data());
    simd::ScalarFastRange(rh.data(), n, range, ridx.data());
    EXPECT_EQ(idx, ridx) << "range " << range;

    std::vector<int64_t> sd(n), rsd(n);
    ops.eval4_bucket(c0, c1, c2, c3, xm.data(), x2.data(), x3.data(),
                     delta.data(), range, n, idx.data(), sd.data());
    simd::ScalarEval4Bucket(c0, c1, c2, c3, rxm.data(), rx2.data(),
                            rx3.data(), delta.data(), range, n, ridx.data(),
                            rsd.data());
    EXPECT_EQ(idx, ridx) << "range " << range;
    EXPECT_EQ(sd, rsd) << "range " << range;

    ops.eval2_bucket(c0, c1, xm.data(), range, n, idx.data());
    simd::ScalarEval2Bucket(c0, c1, rxm.data(), range, n, ridx.data());
    EXPECT_EQ(idx, ridx) << "range " << range;
  }

  EXPECT_EQ(ops.eval4_signed_sum(c0, c1, c2, c3, xm.data(), x2.data(),
                                 x3.data(), delta.data(), n),
            simd::ScalarEval4SignedSum(c0, c1, c2, c3, rxm.data(), rx2.data(),
                                       rx3.data(), delta.data(), n));

  std::vector<uint64_t> masks(n, 0), rmasks(n, 0);
  for (unsigned bit : {0u, 7u, 63u}) {
    ops.eval2_parity_or(c0, c1, xm.data(), n, bit, masks.data());
    simd::ScalarEval2ParityOr(c0, c1, rxm.data(), n, bit, rmasks.data());
  }
  EXPECT_EQ(masks, rmasks);
}

// Whole-sketch states: counters, estimates, and fingerprints after a
// batched pass must be bit-identical to the same pass under the scalar
// tier.
TEST_P(SimdDispatchTest, SketchStatesMatchScalarTier) {
  const Stream stream = MakeTurnstileStream(0xd15b);
  std::vector<ItemId> probes;
  for (ItemId i = 0; i < 64; ++i) probes.push_back(i * 61 + 3);

  // Reference pass under the scalar tier.
  ASSERT_TRUE(simd::ForceIsaTier(IsaTier::kScalar));
  Rng r1(31);
  CountSketch cs_ref(CountSketchOptions{5, 320}, r1);  // non-pow-2 buckets
  ProcessStream(cs_ref, stream);
  const std::vector<int64_t> cs_est_ref = cs_ref.EstimateAll(probes);
  Rng r2(32);
  CountMinSketch cm_ref(CountMinOptions{5, 320}, r2);
  ProcessStream(cm_ref, stream);
  Rng r3(33);
  AmsSketch ams_ref(AmsOptions{16, 5}, r3);
  ProcessStream(ams_ref, stream);
  GnpSketchOptions gnp_options;
  gnp_options.substreams = 24;
  gnp_options.trials = 10;
  gnp_options.id_bits = 12;
  Rng r4(34);
  GnpHeavyHitter gnp_ref(gnp_options, r4);
  ProcessStream(gnp_ref, stream);

  // Same-seed pass under the tier being tested.
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  Rng t1(31);
  CountSketch cs(CountSketchOptions{5, 320}, t1);
  ProcessStream(cs, stream);
  EXPECT_EQ(cs.Fingerprint(), cs_ref.Fingerprint());
  EXPECT_EQ(cs.counters(), cs_ref.counters());
  EXPECT_EQ(cs.EstimateAll(probes), cs_est_ref);
  EXPECT_DOUBLE_EQ(cs.EstimateF2(), cs_ref.EstimateF2());

  Rng t2(32);
  CountMinSketch cm(CountMinOptions{5, 320}, t2);
  ProcessStream(cm, stream);
  EXPECT_EQ(cm.Fingerprint(), cm_ref.Fingerprint());
  EXPECT_EQ(cm.counters(), cm_ref.counters());
  for (const ItemId probe : probes) {
    EXPECT_EQ(cm.EstimateMin(probe), cm_ref.EstimateMin(probe));
    EXPECT_EQ(cm.EstimateMedian(probe), cm_ref.EstimateMedian(probe));
  }

  Rng t3(33);
  AmsSketch ams(AmsOptions{16, 5}, t3);
  ProcessStream(ams, stream);
  EXPECT_EQ(ams.Fingerprint(), ams_ref.Fingerprint());
  EXPECT_EQ(ams.sums(), ams_ref.sums());
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), ams_ref.EstimateF2());

  Rng t4(34);
  GnpHeavyHitter gnp(gnp_options, t4);
  ProcessStream(gnp, stream);
  EXPECT_EQ(gnp.Fingerprint(), gnp_ref.Fingerprint());
  EXPECT_EQ(gnp.counters(), gnp_ref.counters());
}

// The batch/single pin under a forced tier: the vector UpdateBatch must
// leave exactly the state of the scalar per-update loop, for uneven
// chunkings.
TEST_P(SimdDispatchTest, BatchSingleEquivalenceUnderForcedTier) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  const Stream stream = MakeTurnstileStream(0xbeef);
  Rng r1(7), r2(7);
  CountSketch single(CountSketchOptions{4, 256}, r1);
  CountSketch batched(CountSketchOptions{4, 256}, r2);
  for (const Update& u : stream.updates()) single.Update(u.item, u.delta);
  const std::vector<Update>& ups = stream.updates();
  size_t consumed = 0, chunk = 3;
  while (consumed < ups.size()) {
    const size_t m = std::min(chunk, ups.size() - consumed);
    batched.UpdateBatch(ups.data() + consumed, m);
    consumed += m;
    chunk = chunk * 2 + 1;  // 3, 7, 15, ... never lane-aligned
  }
  EXPECT_EQ(single.counters(), batched.counters());
}

// The merge pin under a forced tier: shard + merge == monolithic, both
// linear counters and the candidate-union top-k decode.
TEST_P(SimdDispatchTest, MergePinsHoldUnderForcedTier) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  const Stream left = MakeTurnstileStream(0xaaa1);
  const Stream right = MakeTurnstileStream(0xaaa2);
  Stream both(left.domain());
  both.AppendStream(left);
  both.AppendStream(right);

  Rng ra(21), rb(21), rc(21);
  CountSketch shard_a(CountSketchOptions{5, 512}, ra);
  CountSketch shard_b(CountSketchOptions{5, 512}, rb);
  CountSketch reference(CountSketchOptions{5, 512}, rc);
  ProcessStream(shard_a, left);
  ProcessStream(shard_b, right);
  ProcessStream(reference, both);
  shard_a.MergeFrom(shard_b);
  EXPECT_EQ(shard_a.counters(), reference.counters());

  // Same-seed trackers (the inner sketch consumes the Rng exactly like a
  // bare CountSketch, so a seed-22 CountSketch is the monolithic
  // reference for seed-22 trackers).
  Rng rd(22), re(22), rf(22);
  CountSketchTopK topk_a(CountSketchOptions{5, 512}, 12, rd);
  CountSketchTopK topk_b(CountSketchOptions{5, 512}, 12, re);
  CountSketch topk_reference(CountSketchOptions{5, 512}, rf);
  ProcessStream(topk_a, left);
  ProcessStream(topk_b, right);
  ProcessStream(topk_reference, both);
  topk_a.MergeFrom(topk_b);
  // The merged counters are whole-stream counters, so the re-estimated
  // survivors must match a monolithic decode of the same candidate union.
  EXPECT_EQ(topk_a.sketch().counters(), topk_reference.counters());
  const std::vector<ItemId> candidates = topk_a.CandidateItems();
  const std::vector<int64_t> estimates =
      topk_reference.EstimateAll(candidates);
  const std::vector<int64_t> merged_estimates =
      topk_a.sketch().EstimateAll(candidates);
  EXPECT_EQ(merged_estimates, estimates);
}

// Conflict-storm pins for the scatter/gather kernels.  The AVX-512 tier's
// native scatter resolves duplicate buckets inside a lane group with a
// vpconflictq-driven combine, so the adversarial patterns are exactly the
// ones where every lane collides: one repeated key, two alternating keys,
// and duplicate runs spanning whole kSimdBlock batches.  int64 wraparound
// addition commutes, so every tier must land bit-identically on the
// scalar loop.  ForceScatterDispatch(kVector) publishes the native vector
// kernels -- default dispatch picks the scalar scatter winner (see
// docs/simd.md), which would make this test vacuously scalar-vs-scalar.
TEST_P(SimdDispatchTest, ScatterKernelsMatchScalarOnConflictStorms) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  simd::ForceScatterDispatch(simd::ScatterDispatch::kVector);
  const simd::SimdOps& ops = simd::Ops();
  Rng rng(0xc0f1);
  const size_t kCounters = 1024;

  struct Pattern {
    const char* name;
    size_t n;
    std::function<uint32_t(size_t)> index_of;
  };
  const std::vector<Pattern> patterns = {
      {"all_one_key", 517, [](size_t) { return 7u; }},
      {"two_alternating", 517,
       [](size_t i) { return (i & 1) ? 3u : 900u; }},
      {"block_duplicate_runs", simd::kSimdBlock,
       [](size_t i) { return static_cast<uint32_t>((i / 16) % 8); }},
      {"lane_group_pairs", 64,
       [](size_t i) { return static_cast<uint32_t>(i / 2); }},
      {"skewed_random", 517, [&rng](size_t) {
         return static_cast<uint32_t>(rng.UniformInt(0, 15));
       }}};

  for (const Pattern& p : patterns) {
    std::vector<uint32_t> idx(p.n);
    std::vector<int64_t> delta(p.n), sd(p.n), sign(p.n);
    for (size_t i = 0; i < p.n; ++i) {
      idx[i] = p.index_of(i);
      delta[i] = static_cast<int64_t>(rng.UniformInt(-1000, 1000));
      sign[i] = (rng.UniformInt(0, 1) == 0) ? 1 : -1;
      sd[i] = delta[i] * sign[i];
    }

    std::vector<int64_t> got(kCounters, 0), want(kCounters, 0);
    ops.scatter_add(got.data(), idx.data(), delta.data(), p.n);
    simd::ScalarScatterAdd(want.data(), idx.data(), delta.data(), p.n);
    EXPECT_EQ(got, want) << "scatter_add pattern " << p.name;

    std::fill(got.begin(), got.end(), 0);
    std::fill(want.begin(), want.end(), 0);
    ops.scatter_add_signed(got.data(), idx.data(), sd.data(), p.n);
    simd::ScalarScatterAddSigned(want.data(), idx.data(), sd.data(), p.n);
    EXPECT_EQ(got, want) << "scatter_add_signed pattern " << p.name;

    std::vector<int64_t> gout(p.n, 0), rout(p.n, 0);
    ops.gather_signed(want.data(), idx.data(), sign.data(), p.n,
                      gout.data());
    simd::ScalarGatherSigned(want.data(), idx.data(), sign.data(), p.n,
                             rout.data());
    EXPECT_EQ(gout, rout) << "gather_signed pattern " << p.name;
  }

  // Wraparound fold order: deltas near the int64 extremes overflow inside
  // a duplicate group; the contract is wraparound equality, not saturation.
  {
    const size_t n = 32;
    std::vector<uint32_t> idx(n, 5);
    std::vector<int64_t> delta(n);
    for (size_t i = 0; i < n; ++i) {
      delta[i] = (i & 1) ? std::numeric_limits<int64_t>::max()
                         : std::numeric_limits<int64_t>::min() + 7;
    }
    std::vector<int64_t> got(kCounters, 0), want(kCounters, 0);
    ops.scatter_add(got.data(), idx.data(), delta.data(), n);
    simd::ScalarScatterAdd(want.data(), idx.data(), delta.data(), n);
    EXPECT_EQ(got, want) << "wraparound duplicate fold";
  }
}

// Whole-sketch conflict storms: streams whose batches are exactly the
// adversarial duplicate patterns, pinned batch == single under the forced
// tier with the native vector kernels published.  This drives the
// conflict loop through the real sketch scatter passes (CountSketch
// signed, Count-Min unsigned) rather than raw arrays.
TEST_P(SimdDispatchTest, SketchConflictStormBatchSinglePin) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  simd::ForceScatterDispatch(simd::ScatterDispatch::kVector);
  Rng srng(0x5701);
  std::vector<Update> ups;
  // One hot key for a full block, then two alternating keys, then runs of
  // kSimdBlock duplicates of rotating keys, then a skewed-random coda.
  for (size_t i = 0; i < simd::kSimdBlock; ++i) {
    ups.push_back(Update{42, (i & 1) ? int64_t{3} : int64_t{-2}});
  }
  for (size_t i = 0; i < simd::kSimdBlock; ++i) {
    ups.push_back(Update{(i & 1) ? ItemId{17} : ItemId{4099}, int64_t{1}});
  }
  for (size_t run = 0; run < 3; ++run) {
    for (size_t i = 0; i < simd::kSimdBlock; ++i) {
      ups.push_back(Update{ItemId{1000 + run},
                           static_cast<int64_t>(srng.UniformInt(-4, 4))});
    }
  }
  for (size_t i = 0; i < 700; ++i) {
    ups.push_back(Update{static_cast<ItemId>(srng.UniformInt(0, 7)),
                         static_cast<int64_t>(srng.UniformInt(-9, 9))});
  }

  Rng r1(77), r2(77), r3(78), r4(78);
  CountSketch cs_single(CountSketchOptions{4, 320}, r1);
  CountSketch cs_batched(CountSketchOptions{4, 320}, r2);
  CountMinSketch cm_single(CountMinOptions{4, 320}, r3);
  CountMinSketch cm_batched(CountMinOptions{4, 320}, r4);
  for (const Update& u : ups) {
    cs_single.Update(u.item, u.delta);
    cm_single.Update(u.item, u.delta);
  }
  // Deliberately uneven chunking so block boundaries cut duplicate runs.
  size_t consumed = 0, chunk = 5;
  while (consumed < ups.size()) {
    const size_t m = std::min(chunk, ups.size() - consumed);
    cs_batched.UpdateBatch(ups.data() + consumed, m);
    cm_batched.UpdateBatch(ups.data() + consumed, m);
    consumed += m;
    chunk = chunk * 2 + 1;
  }
  EXPECT_EQ(cs_single.counters(), cs_batched.counters());
  EXPECT_EQ(cm_single.counters(), cm_batched.counters());

  // The gather_signed decode path: duplicate probes in one batch.
  std::vector<ItemId> probes(130, ItemId{42});
  for (size_t i = 0; i < probes.size(); i += 3) probes[i] = 17;
  EXPECT_EQ(cs_single.EstimateAll(probes), cs_batched.EstimateAll(probes));
}

// Regression for the >64-trial gnp geometry: the batched path packs trial
// indicators into ceil(trials/64) mask words per item instead of falling
// back to the per-update loop, and must stay bit-identical to Update().
TEST_P(SimdDispatchTest, GnpManyTrialsBatchedMatchesSingle) {
  ASSERT_TRUE(simd::ForceIsaTier(GetParam()));
  const Stream stream = MakeTurnstileStream(0x9b9b, 1 << 10, 600);
  for (const size_t trials : {size_t{70}, size_t{130}}) {
    GnpSketchOptions options;
    options.substreams = 16;
    options.trials = trials;  // 2 and 3 mask words
    options.id_bits = 10;
    Rng r1(55), r2(55);
    GnpHeavyHitter single(options, r1);
    GnpHeavyHitter batched(options, r2);
    ASSERT_EQ(single.Fingerprint(), batched.Fingerprint());
    const std::vector<Update>& ups = stream.updates();
    for (const Update& u : ups) single.Update(u.item, u.delta);
    size_t consumed = 0, chunk = 3;
    while (consumed < ups.size()) {
      const size_t m = std::min(chunk, ups.size() - consumed);
      batched.UpdateBatch(ups.data() + consumed, m);
      consumed += m;
      chunk = chunk * 2 + 1;
    }
    EXPECT_EQ(single.counters(), batched.counters())
        << "trials = " << trials;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, SimdDispatchTest,
    ::testing::Values(IsaTier::kScalar, IsaTier::kAvx2, IsaTier::kAvx512),
    [](const ::testing::TestParamInfo<IsaTier>& info) {
      return simd::IsaTierName(info.param);
    });

}  // namespace
}  // namespace gstream
