#include "sketch/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

TEST(CountSketchTest, SingleItemExactRecovery) {
  Rng rng(1);
  CountSketch cs(CountSketchOptions{5, 64}, rng);
  cs.Update(42, 1000);
  EXPECT_EQ(cs.Estimate(42), 1000);
}

TEST(CountSketchTest, DeletionsCancelExactly) {
  Rng rng(2);
  CountSketch cs(CountSketchOptions{5, 64}, rng);
  cs.Update(7, 500);
  cs.Update(7, -500);
  EXPECT_EQ(cs.Estimate(7), 0);
}

TEST(CountSketchTest, UntouchedItemEstimatesNearZero) {
  Rng rng(3);
  CountSketch cs(CountSketchOptions{7, 512}, rng);
  for (ItemId i = 0; i < 100; ++i) cs.Update(i, 10);
  // Item 5000 was never updated; its estimate is pure collision noise,
  // bounded by sqrt(F2/b) * O(1) = sqrt(100*100/512) ~ 4.4.
  EXPECT_LE(std::llabs(cs.Estimate(5000)), 20);
}

TEST(CountSketchTest, ErrorBoundHolndsOnZipfWorkload) {
  Rng rng(4);
  const Workload w = MakeZipfWorkload(1 << 14, 2000, 1.1, 50000,
                                      StreamShapeOptions{}, rng);
  CountSketch cs(CountSketchOptions{7, 1024}, rng);
  ProcessStream(cs, w.stream);
  const double f2 = ExactMoment(w.frequencies, 2.0);
  const double bound = 3.0 * std::sqrt(f2 / 1024.0);
  size_t violations = 0;
  for (const auto& [item, value] : w.frequencies) {
    if (std::llabs(cs.Estimate(item) - value) > bound) ++violations;
  }
  // Per-item failure probability is 2^{-Omega(rows)}; allow a thin tail.
  EXPECT_LE(violations, w.frequencies.size() / 50);
}

TEST(CountSketchTest, MoreBucketsShrinkError) {
  Rng rng(5);
  const Workload w = MakeUniformWorkload(1 << 12, 3000, 1, 100,
                                         StreamShapeOptions{}, rng);
  double errors[2];
  size_t idx = 0;
  for (const size_t buckets : {64u, 4096u}) {
    Rng local(99);
    CountSketch cs(CountSketchOptions{5, buckets}, local);
    ProcessStream(cs, w.stream);
    std::vector<double> errs;
    for (const auto& [item, value] : w.frequencies) {
      errs.push_back(
          static_cast<double>(std::llabs(cs.Estimate(item) - value)));
    }
    errors[idx++] = Mean(errs);
  }
  EXPECT_LT(errors[1], errors[0] / 2.0);
}

TEST(CountSketchTest, DeterministicGivenSeed) {
  const Workload w = [&] {
    Rng rng(6);
    return MakeUniformWorkload(1 << 10, 500, 1, 50, StreamShapeOptions{},
                               rng);
  }();
  Rng r1(123), r2(123);
  CountSketch a(CountSketchOptions{5, 256}, r1);
  CountSketch b(CountSketchOptions{5, 256}, r2);
  ProcessStream(a, w.stream);
  ProcessStream(b, w.stream);
  for (const auto& [item, value] : w.frequencies) {
    EXPECT_EQ(a.Estimate(item), b.Estimate(item));
  }
}

TEST(CountSketchTest, F2EstimateWithinFactorTwo) {
  Rng rng(7);
  const Workload w = MakeZipfWorkload(1 << 12, 1000, 1.0, 10000,
                                      StreamShapeOptions{}, rng);
  CountSketch cs(CountSketchOptions{9, 2048}, rng);
  ProcessStream(cs, w.stream);
  const double truth = ExactMoment(w.frequencies, 2.0);
  EXPECT_GT(cs.EstimateF2(), truth / 2.0);
  EXPECT_LT(cs.EstimateF2(), truth * 2.0);
}

TEST(CountSketchTest, SpaceBytesScalesWithGeometry) {
  Rng rng(8);
  CountSketch small(CountSketchOptions{2, 32}, rng);
  CountSketch big(CountSketchOptions{8, 512}, rng);
  EXPECT_GT(big.SpaceBytes(), small.SpaceBytes() * 16);
  EXPECT_GE(small.SpaceBytes(), 2 * 32 * sizeof(int64_t));
}

TEST(CountSketchTopKTest, FindsPlantedHeavyHitter) {
  Rng rng(9);
  ItemId heavy = 0;
  const Workload w = MakePlantedHeavyHitterWorkload(
      1 << 12, 500, 20, 100000, StreamShapeOptions{}, rng, &heavy);
  CountSketchTopK topk(CountSketchOptions{5, 512}, 10, rng);
  ProcessStream(topk, w.stream);
  const auto top = topk.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, heavy);
  EXPECT_NEAR(static_cast<double>(top[0].second), 100000.0, 1000.0);
}

TEST(CountSketchTopKTest, FindsNegativeHeavyHitter) {
  Rng rng(10);
  CountSketchTopK topk(CountSketchOptions{5, 256}, 4, rng);
  for (ItemId i = 0; i < 100; ++i) topk.Update(i, 3);
  topk.Update(777, -50000);
  const auto top = topk.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, 777u);
  EXPECT_LT(top[0].second, -40000);
}

TEST(CountSketchTopKTest, CapsCandidateCount) {
  Rng rng(11);
  const size_t k = 8;
  CountSketchTopK topk(CountSketchOptions{5, 256}, k, rng);
  for (ItemId i = 0; i < 10000; ++i) topk.Update(i, 1 + (i % 7));
  EXPECT_LE(topk.TopK().size(), k);
}

TEST(CountSketchTopKTest, TopKSortedByMagnitude) {
  Rng rng(12);
  CountSketchTopK topk(CountSketchOptions{7, 512}, 5, rng);
  topk.Update(1, 100);
  topk.Update(2, -5000);
  topk.Update(3, 300);
  const auto top = topk.TopK();
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 1u);
}

TEST(CountSketchDeathTest, RejectsZeroRows) {
  Rng rng(13);
  EXPECT_DEATH(CountSketch(CountSketchOptions{0, 8}, rng), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
