// Cross-module integration scenarios: each test runs a miniature version
// of one of the experiments in bench/ and asserts its qualitative outcome.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/index_problem.h"
#include "core/gsum.h"
#include "gfunc/classifier.h"
#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

// Theorem 3's separation, end to end: on a stream concentrated at a
// volatile scale of (2+sin x) x^2, the two-pass estimator succeeds while
// the one-pass estimator (whose pruning must reject the unstable
// candidates) underestimates badly.
TEST(IntegrationTest, TwoPassBeatsOnePassOnNonPredictableFunction) {
  const GFunctionPtr g = MakeSinModulated();
  Rng rng(1);
  // Mass at x where sin(x) ~ -1 so a +-1 estimate error flips g by ~3x.
  // x = 11 (sin = -0.99997): neighbors 10, 12 have sin -0.54, -0.53.
  std::vector<HistogramBucket> buckets = {{11, 200}, {3, 400}};
  const Workload w =
      MakeHistogramWorkload(1 << 12, buckets, StreamShapeOptions{}, rng);
  const double truth = ExactGSum(w.frequencies, g->AsCallable());

  auto run = [&](int passes, uint64_t seed) {
    GSumOptions options;
    options.passes = passes;
    options.cs_buckets = 2048;
    options.candidates = 64;
    options.repetitions = 5;
    options.epsilon = 0.1;
    options.seed = seed;
    GSumEstimator estimator(g, w.stream.domain(), options);
    return RelativeError(estimator.Process(w.stream), truth);
  };

  std::vector<double> one_pass, two_pass;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    one_pass.push_back(run(1, seed));
    two_pass.push_back(run(2, seed));
  }
  EXPECT_LE(Median(two_pass), 0.15);
  // The one-pass algorithm cannot certify stability at the volatile scale:
  // expect a distinctly worse median error.
  EXPECT_GT(Median(one_pass), 2.0 * Median(two_pass));
}

// Lemma 23's obstruction, end to end: for g = 1/x a small sketch cannot
// distinguish INDEX reduction instances (success ~ 1/2), because the
// decisive item is g-heavy but F2-light.
TEST(IntegrationTest, InverseFunctionIndexReductionDefeatsSmallSketch) {
  const GFunctionPtr g = MakeInversePoly(1.0);
  const IndexReductionShape shape{/*alice_frequency=*/512,
                                  /*bob_frequency=*/1};
  Rng rng(2);
  int correct = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const IndexInstance inst = MakeIndexInstance(512, rng);
    const Stream stream = BuildIndexReductionStream(inst, shape);
    GSumOptions options;
    options.passes = 1;
    options.cs_buckets = 256;
    options.candidates = 16;
    options.repetitions = 3;
    options.seed = 1000 + static_cast<uint64_t>(t);
    GSumEstimator estimator(g, stream.domain(), options);
    const double estimate = estimator.Process(stream);
    const DistinguishingOutcomes o =
        IndexReductionOutcomes(*g, inst.alice_set.size(), shape);
    if (DecideIntersecting(estimate, o) == inst.intersecting) ++correct;
  }
  // Coin-flip territory: far from the 2/3 success a tractable-distance
  // distinguisher would need.  (Binomial(30, 0.5): >= 25 has p ~ 2e-4.)
  EXPECT_LE(correct, 24);
}

// The same sketch budget easily solves an equally-gapped distinguishing
// task for a tractable function: presence/absence of one F2-dominant item.
TEST(IntegrationTest, QuadraticDistinguishesHeavyItemAtSameBudget) {
  const GFunctionPtr g = MakePower(2.0);
  Rng rng(3);
  int correct = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const bool planted = rng.Bernoulli(0.5);
    FrequencyMap freq;
    for (ItemId i = 0; i < 256; ++i) freq[i] = 1;
    if (planted) freq[400] = 64;  // g-share: 4096 / (4096 + 256) = 0.94
    const Workload w =
        MakeStreamFromFrequencies(512, freq, StreamShapeOptions{}, rng);
    GSumOptions options;
    options.passes = 1;
    options.cs_buckets = 256;
    options.candidates = 16;
    options.repetitions = 3;
    options.seed = 2000 + static_cast<uint64_t>(t);
    GSumEstimator estimator(g, w.stream.domain(), options);
    const double estimate = estimator.Process(w.stream);
    const double mid = 256.0 + 4096.0 / 2.0;
    if ((estimate > mid) == planted) ++correct;
  }
  EXPECT_GE(correct, 27);
}

// The classifier and the estimator agree: a function classified 1-pass
// tractable achieves small error with the 1-pass estimator.
TEST(IntegrationTest, ClassifierVerdictPredictsEstimatorBehavior) {
  const GFunctionPtr g = MakeX2Log();
  // Default (deep) domain: x^2 lg(1+x) has x = 1 slow-jumping violations
  // up to y ~ 2^17 that a shallow probe window would misread.
  const PropertyCheckOptions check;
  ASSERT_EQ(Classify(*g, check).verdict, Verdict::kOnePassTractable);

  Rng rng(4);
  const Workload w = MakeZipfWorkload(1 << 12, 800, 1.5, 30000,
                                      StreamShapeOptions{}, rng);
  const double truth = ExactGSum(w.frequencies, g->AsCallable());
  GSumOptions options;
  options.passes = 1;
  options.cs_buckets = 1024;
  options.candidates = 48;
  options.repetitions = 5;
  GSumEstimator estimator(g, w.stream.domain(), options);
  EXPECT_NEAR(estimator.Process(w.stream) / truth, 1.0, 0.3);
}

// Determinism across the whole stack: identical seeds give identical
// estimates even through multi-level, multi-repetition machinery.
TEST(IntegrationTest, FullStackDeterminism) {
  Rng rng(5);
  const Workload w = MakeZipfWorkload(1 << 12, 500, 1.3, 10000,
                                      StreamShapeOptions{}, rng);
  const GFunctionPtr g = MakeSpamClickFee(16);
  GSumOptions options;
  options.passes = 2;
  options.repetitions = 3;
  GSumEstimator a(g, w.stream.domain(), options);
  GSumEstimator b(g, w.stream.domain(), options);
  EXPECT_DOUBLE_EQ(a.Process(w.stream), b.Process(w.stream));
}

}  // namespace
}  // namespace gstream
