#include "core/moments.h"

#include <gtest/gtest.h>

#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

Workload MomentWorkload(uint64_t seed) {
  Rng rng(seed);
  return MakeZipfWorkload(1 << 13, 1000, 1.5, 20000, StreamShapeOptions{},
                          rng);
}

TEST(MomentsTest, F2UsesAmsFastPath) {
  FrequencyMomentEstimator est(2.0, 1 << 13, MomentOptions{});
  EXPECT_TRUE(est.uses_ams_fast_path());
}

TEST(MomentsTest, NonQuadraticUsesGenericRoute) {
  for (const double p : {0.0, 0.5, 1.0, 1.5}) {
    FrequencyMomentEstimator est(p, 1 << 13, MomentOptions{});
    EXPECT_FALSE(est.uses_ams_fast_path()) << "p=" << p;
  }
}

TEST(MomentsTest, F2AccurateOnSkewedStream) {
  const Workload w = MomentWorkload(1);
  const double truth = ExactMoment(w.frequencies, 2.0);
  FrequencyMomentEstimator est(2.0, w.stream.domain(), MomentOptions{});
  EXPECT_NEAR(est.Process(w.stream) / truth, 1.0, 0.2);
}

TEST(MomentsTest, F1AccurateOnSkewedStream) {
  const Workload w = MomentWorkload(2);
  const double truth = ExactMoment(w.frequencies, 1.0);
  MomentOptions options;
  options.gsum.cs_buckets = 1024;
  options.gsum.repetitions = 5;
  FrequencyMomentEstimator est(1.0, w.stream.domain(), options);
  EXPECT_NEAR(est.Process(w.stream) / truth, 1.0, 0.3);
}

TEST(MomentsTest, FractionalMomentAccurate) {
  const Workload w = MomentWorkload(3);
  const double truth = ExactMoment(w.frequencies, 1.5);
  MomentOptions options;
  options.gsum.cs_buckets = 1024;
  options.gsum.repetitions = 5;
  FrequencyMomentEstimator est(1.5, w.stream.domain(), options);
  EXPECT_NEAR(est.Process(w.stream) / truth, 1.0, 0.3);
}

TEST(MomentsTest, F2MatchesStandaloneAms) {
  // Same seed -> the fast path must agree bit-for-bit with a directly
  // constructed AMS sketch.
  const Workload w = MomentWorkload(4);
  MomentOptions options;
  options.seed = 99;
  FrequencyMomentEstimator est(2.0, w.stream.domain(), options);
  est.Process(w.stream);
  Rng rng(99);
  AmsSketch ams(options.ams, rng);
  ProcessStream(ams, w.stream);
  EXPECT_DOUBLE_EQ(est.Estimate(), ams.EstimateF2());
}

TEST(MomentsTest, TurnstileDeletionsHandled) {
  FrequencyMomentEstimator est(2.0, 64, MomentOptions{});
  est.Update(1, 100);
  est.Update(1, -100);
  est.Update(2, 5);
  EXPECT_DOUBLE_EQ(est.Estimate(), 25.0);
}

TEST(MomentsTest, SpaceReported) {
  FrequencyMomentEstimator f2(2.0, 1 << 13, MomentOptions{});
  FrequencyMomentEstimator f1(1.0, 1 << 13, MomentOptions{});
  EXPECT_GT(f2.SpaceBytes(), 0u);
  // The generic recursive route costs more than one AMS sketch.
  EXPECT_GT(f1.SpaceBytes(), f2.SpaceBytes());
}

TEST(MomentsDeathTest, NegativeExponentRejected) {
  EXPECT_DEATH(FrequencyMomentEstimator(-1.0, 64, MomentOptions{}),
               "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
