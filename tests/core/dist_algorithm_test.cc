#include "core/dist_algorithm.h"

#include <gtest/gtest.h>

#include "comm/dist_problem.h"

namespace gstream {
namespace {

DistAlgorithmOptions Pieces(size_t t) {
  DistAlgorithmOptions options;
  options.pieces = t;
  return options;
}

TEST(DistAlgorithmTest, CombinationNormMatchesTheory) {
  Rng rng(1);
  // 2*3 - 5 = 1: q = 3.
  DistStreamingAlgorithm alg({5, 3}, 1, Pieces(64), rng);
  EXPECT_EQ(alg.combination_norm(), 3);
}

TEST(DistAlgorithmTest, NormGrowsWithGapFamily) {
  Rng rng(2);
  // (2k+1, 2) -> d=1 needs k+1 terms.
  int64_t previous = 0;
  for (int64_t k = 1; k <= 6; ++k) {
    DistStreamingAlgorithm alg({2 * k + 1, 2}, 1, Pieces(64), rng);
    EXPECT_EQ(alg.combination_norm(), k + 1);
    EXPECT_GT(alg.combination_norm(), previous);
    previous = alg.combination_norm();
  }
}

TEST(DistAlgorithmTest, MultiplicityBoundSoundByConstruction) {
  Rng rng(3);
  // Larger q admits a larger sound Z.
  DistStreamingAlgorithm tight({5, 3}, 1, Pieces(64), rng);
  DistStreamingAlgorithm loose({17, 2}, 1, Pieces(64), rng);
  EXPECT_GE(loose.multiplicity_bound(), tight.multiplicity_bound());
  EXPECT_GE(tight.multiplicity_bound(), 0);
}

TEST(DistAlgorithmTest, DetectsPlantedTargetManyPieces) {
  // With one piece per coordinate the signed multiplicities are 0/1 and
  // detection is certain whenever Z >= 1 holds; use a q-rich pair.
  Rng rng(4);
  DistInstanceParams params;
  params.n = 1 << 10;
  params.density = 0.3;
  params.allowed = {17, 2};
  params.target = 1;
  int detected = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    DistStreamingAlgorithm alg(params.allowed, params.target,
                               Pieces(params.n * 4), rng);
    const DistInstance instance = MakeDistInstance(params, true, rng);
    ProcessStream(alg, instance.stream);
    if (alg.DetectsTarget()) ++detected;
  }
  EXPECT_GE(detected, 18);
}

TEST(DistAlgorithmTest, NoFalsePositivesWithoutTarget) {
  // Soundness is unconditional on V0 instances *when multiplicities stay
  // within Z*; with t >= 4n they essentially always do.
  Rng rng(5);
  DistInstanceParams params;
  params.n = 1 << 10;
  params.density = 0.3;
  params.allowed = {17, 2};
  params.target = 1;
  int false_positives = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    DistStreamingAlgorithm alg(params.allowed, params.target,
                               Pieces(params.n * 4), rng);
    const DistInstance instance = MakeDistInstance(params, false, rng);
    ProcessStream(alg, instance.stream);
    if (alg.DetectsTarget()) ++false_positives;
  }
  EXPECT_LE(false_positives, 2);
}

TEST(DistAlgorithmTest, FewPiecesDegradeGracefully) {
  // With far fewer pieces than n/q^2 the promise |z| <= Z breaks and the
  // algorithm loses soundness -- the lower-bound side of Theorem 51.
  Rng rng(6);
  DistInstanceParams params;
  params.n = 1 << 10;
  params.density = 0.5;
  params.allowed = {5, 3};  // q = 3 -> tiny tolerance
  params.target = 1;
  int wrong = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    DistStreamingAlgorithm alg(params.allowed, params.target, Pieces(4),
                               rng);
    const DistInstance no_target = MakeDistInstance(params, false, rng);
    ProcessStream(alg, no_target.stream);
    if (alg.DetectsTarget()) ++wrong;  // false positive
  }
  // Not asserting failure -- asserting the *possibility* is realized often
  // under-resourced: most trials misfire at t=4.
  EXPECT_GE(wrong, 10);
}

TEST(DistAlgorithmTest, ModulusContributionsVanish) {
  // Items at +-modulus frequency never trigger detection regardless of
  // count: they are 0 mod a.
  Rng rng(7);
  DistStreamingAlgorithm alg({8, 3}, 2, Pieces(8), rng);
  ASSERT_EQ(alg.modulus(), 8);
  Stream stream(256);
  for (ItemId i = 0; i < 256; ++i) stream.Append(i, (i % 2) ? 8 : -8);
  ProcessStream(alg, stream);
  EXPECT_FALSE(alg.DetectsTarget());
}

TEST(DistAlgorithmTest, SpaceScalesWithPieces) {
  Rng rng(8);
  DistStreamingAlgorithm small({5, 3}, 1, Pieces(16), rng);
  DistStreamingAlgorithm big({5, 3}, 1, Pieces(1024), rng);
  EXPECT_GT(big.SpaceBytes(), small.SpaceBytes() * 32);
}

TEST(DistAlgorithmDeathTest, TargetMustBeCombination) {
  Rng rng(9);
  // gcd(4, 6) = 2 does not divide 3.
  EXPECT_DEATH(DistStreamingAlgorithm({4, 6}, 3, Pieces(8), rng),
               "GSTREAM_CHECK");
}

TEST(DistAlgorithmDeathTest, TargetMustNotBeAllowed) {
  Rng rng(10);
  EXPECT_DEATH(DistStreamingAlgorithm({5, 3}, 3, Pieces(8), rng),
               "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
