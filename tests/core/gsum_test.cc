#include "core/gsum.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

GSumOptions TestOptions(int passes) {
  GSumOptions options;
  options.passes = passes;
  options.cs_rows = 5;
  options.cs_buckets = 1024;
  options.candidates = 48;
  options.repetitions = 5;
  options.ams = {32, 5};
  options.envelope_domain = 1 << 16;
  return options;
}

Workload SkewedWorkload(uint64_t seed) {
  Rng rng(seed);
  return MakeZipfWorkload(1 << 13, 1200, 1.5, 40000, StreamShapeOptions{},
                          rng);
}

// The headline acceptance test: both the one-pass and two-pass estimators
// approximate g-SUM for tractable catalog functions on a skewed stream.
struct GSumCase {
  GFunctionPtr g;
  int passes;
};

class GSumSweep : public ::testing::TestWithParam<size_t> {
 public:
  static std::vector<GSumCase> Cases() {
    std::vector<GSumCase> cases;
    for (const GFunctionPtr& g :
         {MakePower(1.0), MakePower(1.5), MakePower(2.0), MakeX2Log(),
          MakeSinLogModulated(), MakeExpSqrtLog()}) {
      cases.push_back({g, 1});
      cases.push_back({g, 2});
    }
    // Predictability not needed with two passes (Theorem 3):
    cases.push_back({MakeSinModulated(), 2});
    cases.push_back({MakeSinSqrtModulated(), 2});
    return cases;
  }
};

TEST_P(GSumSweep, MedianErrorWithinTarget) {
  const GSumCase test_case = Cases()[GetParam()];
  SCOPED_TRACE(test_case.g->name() + " passes=" +
               std::to_string(test_case.passes));
  const Workload w = SkewedWorkload(17);
  const double truth =
      ExactGSum(w.frequencies, test_case.g->AsCallable());

  std::vector<double> errors;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GSumOptions options = TestOptions(test_case.passes);
    options.seed = seed;
    GSumEstimator estimator(test_case.g, w.stream.domain(), options);
    const double estimate = estimator.Process(w.stream);
    errors.push_back(RelativeError(estimate, truth));
  }
  EXPECT_LE(Median(errors), 0.3) << "truth=" << truth;
}

INSTANTIATE_TEST_SUITE_P(
    TractableFunctions, GSumSweep,
    ::testing::Range<size_t>(0, GSumSweep::Cases().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      const GSumCase c = GSumSweep::Cases()[info.param];
      std::string name = c.g->name() + (c.passes == 1 ? "_1p" : "_2p");
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(GSumEstimatorTest, DeterministicGivenSeed) {
  const Workload w = SkewedWorkload(19);
  const GFunctionPtr g = MakePower(2.0);
  GSumEstimator a(g, w.stream.domain(), TestOptions(1));
  GSumEstimator b(g, w.stream.domain(), TestOptions(1));
  EXPECT_DOUBLE_EQ(a.Process(w.stream), b.Process(w.stream));
}

TEST(GSumEstimatorTest, EstimateForGSharesTheSketch) {
  const Workload w = SkewedWorkload(23);
  const GFunctionPtr g2 = MakePower(2.0);
  const GFunctionPtr g1 = MakePower(1.0);
  GSumEstimator estimator(g2, w.stream.domain(), TestOptions(2));
  estimator.Process(w.stream);
  const double truth1 = ExactGSum(w.frequencies, g1->AsCallable());
  // Decoding the x^2-configured sketch under x^1 still approximates F1.
  EXPECT_NEAR(estimator.EstimateForG(*g1) / truth1, 1.0, 0.35);
}

TEST(GSumEstimatorTest, DerivedLevelsShrinkWithCandidates) {
  GSumOptions few = TestOptions(1);
  few.candidates = 4;
  GSumOptions many = TestOptions(1);
  many.candidates = 512;
  GSumEstimator a(MakePower(2.0), 1 << 14, few);
  GSumEstimator b(MakePower(2.0), 1 << 14, many);
  EXPECT_GT(a.levels(), b.levels());
}

TEST(GSumEstimatorTest, ExplicitLevelsRespected) {
  GSumOptions options = TestOptions(1);
  options.levels = 3;
  GSumEstimator estimator(MakePower(2.0), 1 << 14, options);
  EXPECT_EQ(estimator.levels(), 3);
}

TEST(GSumEstimatorTest, EnvelopeComputedFromFunction) {
  GSumOptions options = TestOptions(1);
  GSumEstimator smooth(MakePower(2.0), 1 << 12, options);
  EXPECT_DOUBLE_EQ(smooth.h_envelope(), 1.0);
  GSumEstimator rough(MakeInversePoly(1.0), 1 << 12, options);
  EXPECT_GT(rough.h_envelope(), 1000.0);
}

TEST(GSumEstimatorTest, ExplicitEnvelopeRespected) {
  GSumOptions options = TestOptions(1);
  options.h_envelope = 7.5;
  GSumEstimator estimator(MakePower(2.0), 1 << 12, options);
  EXPECT_DOUBLE_EQ(estimator.h_envelope(), 7.5);
}

TEST(GSumEstimatorTest, SpaceGrowsWithRepetitions) {
  GSumOptions one = TestOptions(1);
  one.repetitions = 1;
  GSumOptions five = TestOptions(1);
  five.repetitions = 5;
  GSumEstimator a(MakePower(2.0), 1 << 12, one);
  GSumEstimator b(MakePower(2.0), 1 << 12, five);
  EXPECT_NEAR(static_cast<double>(b.SpaceBytes()),
              5.0 * static_cast<double>(a.SpaceBytes()),
              0.05 * static_cast<double>(b.SpaceBytes()));
}

TEST(GSumEstimatorTest, SpaceIsSublinearInStreamSize) {
  // The whole point: the sketch is far smaller than the exact frequency
  // map on a large skewed stream.
  const Workload w = SkewedWorkload(29);
  GSumEstimator estimator(MakePower(2.0), w.stream.domain(),
                          TestOptions(1));
  estimator.Process(w.stream);
  const size_t exact_bytes =
      w.frequencies.size() * (sizeof(ItemId) + sizeof(int64_t));
  // Not asserting a particular ratio -- just that both are reported and the
  // sketch does not balloon past the trivial solution for this config.
  EXPECT_GT(estimator.SpaceBytes(), 0u);
  EXPECT_GT(exact_bytes, 0u);
}

TEST(GSumEstimatorTest, TurnstileChurnInvariant) {
  Rng rng(31);
  StreamShapeOptions shape;
  shape.churn_pairs = 3000;
  shape.churn_magnitude = 17;
  const Workload w =
      MakeZipfWorkload(1 << 12, 800, 1.5, 20000, shape, rng);
  const GFunctionPtr g = MakePower(2.0);
  const double truth = ExactGSum(w.frequencies, g->AsCallable());
  GSumEstimator estimator(g, w.stream.domain(), TestOptions(1));
  EXPECT_NEAR(estimator.Process(w.stream) / truth, 1.0, 0.35);
}

TEST(GSumEstimatorDeathTest, RejectsInvalidPasses) {
  GSumOptions options = TestOptions(1);
  options.passes = 3;
  EXPECT_DEATH(GSumEstimator(MakePower(2.0), 1 << 10, options),
               "GSTREAM_CHECK");
}

TEST(GSumEstimatorDeathTest, RejectsNullFunction) {
  EXPECT_DEATH(GSumEstimator(nullptr, 1 << 10, TestOptions(1)),
               "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
