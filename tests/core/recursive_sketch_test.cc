#include "core/recursive_sketch.h"

#include <gtest/gtest.h>

#include "core/two_pass_hh.h"
#include "gfunc/catalog.h"
#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

GHeavyHitterFactory ExactFactory() {
  return [](int /*level*/, Rng& /*rng*/) {
    return std::make_unique<ExactHeavyHitterSketch>();
  };
}

// The telescoping identity: with complete, exact covers at every level, the
// recursive estimator X_0 equals the exact g-SUM *identically* -- every
// 2*(X_{l+1} - overlap) term cancels.  This pins the estimator algebra.
TEST(RecursiveSketchTest, ExactCoversGiveExactSum) {
  Rng data_rng(1);
  const Workload w = MakeZipfWorkload(1 << 10, 300, 1.1, 1000,
                                      StreamShapeOptions{}, data_rng);
  const GFunctionPtr g = MakeX2Log();
  for (const int levels : {0, 1, 4, 8}) {
    Rng rng(42);
    RecursiveGSum sketch(levels, ExactFactory(), rng);
    for (const Update& u : w.stream.updates()) sketch.Update(u.item, u.delta);
    EXPECT_NEAR(sketch.Estimate(*g),
                ExactGSum(w.frequencies, g->AsCallable()),
                1e-6 * ExactGSum(w.frequencies, g->AsCallable()))
        << "levels=" << levels;
  }
}

TEST(RecursiveSketchTest, ExactCoversExactForSeveralFunctions) {
  Rng data_rng(2);
  const Workload w = MakeUniformWorkload(1 << 10, 400, 1, 500,
                                         StreamShapeOptions{}, data_rng);
  Rng rng(7);
  RecursiveGSum sketch(6, ExactFactory(), rng);
  for (const Update& u : w.stream.updates()) sketch.Update(u.item, u.delta);
  for (const GFunctionPtr& g :
       {MakePower(1.0), MakePower(2.0), MakeIndicator(), MakeSpamClickFee(16),
        MakeGnp()}) {
    SCOPED_TRACE(g->name());
    const double truth = ExactGSum(w.frequencies, g->AsCallable());
    EXPECT_NEAR(sketch.Estimate(*g), truth, 1e-6 * truth);
  }
}

TEST(RecursiveSketchTest, EstimateIsNonNegative) {
  Rng rng(3);
  RecursiveGSum sketch(4, ExactFactory(), rng);
  // Empty stream: estimate must clamp to 0, not drift negative.
  EXPECT_DOUBLE_EQ(sketch.Estimate(*MakePower(2.0)), 0.0);
}

TEST(RecursiveSketchTest, RoutesUpdatesToNestedLevels) {
  Rng rng(4);
  RecursiveGSum sketch(3, ExactFactory(), rng);
  sketch.Update(5, 10);
  // Level 0 always sees the item, so even a 1-item stream estimates g
  // exactly regardless of the deeper levels' sampling.
  const GFunctionPtr g = MakePower(2.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(*g), 100.0);
}

// End-to-end with the real two-pass heavy hitter subroutine: the estimate
// concentrates around the truth on a skewed workload.
TEST(RecursiveSketchTest, TwoPassSubroutineConcentrates) {
  Rng data_rng(5);
  const Workload w = MakeZipfWorkload(1 << 12, 1000, 1.3, 50000,
                                      StreamShapeOptions{}, data_rng);
  const GFunctionPtr g = MakePower(2.0);
  const double truth = ExactGSum(w.frequencies, g->AsCallable());

  TwoPassHHOptions hh;
  hh.count_sketch = {5, 1024};
  hh.candidates = 48;
  const GHeavyHitterFactory factory = [hh](int /*level*/, Rng& rng) {
    return std::make_unique<TwoPassHeavyHitter>(hh, rng);
  };

  Rng rng(6);
  std::vector<double> errors;
  for (int trial = 0; trial < 7; ++trial) {
    RecursiveGSum sketch(6, factory, rng);
    for (const Update& u : w.stream.updates()) sketch.Update(u.item, u.delta);
    sketch.AdvancePass();
    for (const Update& u : w.stream.updates()) sketch.Update(u.item, u.delta);
    errors.push_back(RelativeError(sketch.Estimate(*g), truth));
  }
  EXPECT_LE(Median(errors), 0.25);
}

// Merging same-seed stacks that processed a random split of the stream
// must reproduce the monolithic estimate: with exact covers the per-level
// merges are exact frequency sums, so the telescoping identity still
// cancels and the merged estimate equals the exact g-SUM.
TEST(RecursiveSketchTest, MergedShardsReproduceMonolithicEstimate) {
  Rng data_rng(11);
  const Workload w = MakeUniformWorkload(1 << 10, 300, 1, 200,
                                         StreamShapeOptions{}, data_rng);
  const GFunctionPtr g = MakePower(2.0);
  const double truth = ExactGSum(w.frequencies, g->AsCallable());
  constexpr int kLevels = 5;
  constexpr size_t kShards = 3;

  Rng proto_rng(77);
  RecursiveGSum prototype(kLevels, ExactFactory(), proto_rng);
  std::vector<RecursiveGSum> shards;
  for (size_t s = 0; s < kShards; ++s) shards.push_back(prototype.Replicate());
  Rng split_rng(78);
  for (const Update& u : w.stream.updates()) {
    shards[split_rng.UniformUint64(kShards)].Update(u.item, u.delta);
  }
  for (size_t s = 1; s < kShards; ++s) shards[0].MergeFrom(shards[s]);
  EXPECT_NEAR(shards[0].Estimate(*g), truth, 1e-6 * truth);
  // Replicas share the prototype's randomness.
  EXPECT_EQ(shards[0].Fingerprint(), prototype.Fingerprint());
}

TEST(RecursiveSketchDeathTest, MergeRejectsDifferentSeeds) {
  // Different-seed stacks subsample the domain differently; the
  // subsampler-fingerprint guard must refuse to fold their levels.
  Rng r1(1), r2(2);
  RecursiveGSum a(4, ExactFactory(), r1);
  RecursiveGSum b(4, ExactFactory(), r2);
  EXPECT_DEATH(a.MergeFrom(b), "GSTREAM_CHECK");
}

TEST(RecursiveSketchDeathTest, MergeRejectsDifferentDepths) {
  Rng r1(1), r2(1);
  RecursiveGSum shallow(2, ExactFactory(), r1);
  RecursiveGSum deep(4, ExactFactory(), r2);
  EXPECT_DEATH(shallow.MergeFrom(deep), "GSTREAM_CHECK");
}

TEST(RecursiveSketchTest, SpaceSumsOverLevels) {
  Rng rng(8);
  RecursiveGSum shallow(1, ExactFactory(), rng);
  RecursiveGSum deep(9, ExactFactory(), rng);
  shallow.Update(1, 5);
  deep.Update(1, 5);
  EXPECT_GT(deep.SpaceBytes(), shallow.SpaceBytes());
}

TEST(RecursiveSketchTest, PassesReflectSubroutine) {
  Rng rng(9);
  RecursiveGSum exact(2, ExactFactory(), rng);
  EXPECT_EQ(exact.passes(), 1);
  TwoPassHHOptions hh;
  const GHeavyHitterFactory factory = [hh](int, Rng& r) {
    return std::make_unique<TwoPassHeavyHitter>(hh, r);
  };
  RecursiveGSum two(2, factory, rng);
  EXPECT_EQ(two.passes(), 2);
}

}  // namespace
}  // namespace gstream
