#include "core/gnp_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/recursive_sketch.h"
#include "gfunc/catalog.h"
#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

GnpSketchOptions TestOptions() {
  GnpSketchOptions options;
  options.substreams = 64;
  options.trials = 32;
  options.id_bits = 16;
  return options;
}

TEST(GnpSketchTest, RecoversSingleItem) {
  Rng rng(1);
  GnpHeavyHitter hh(TestOptions(), rng);
  hh.Update(/*item=*/12345, /*delta=*/48);  // 48 = 16*3: i_v = 4
  const GCover cover = hh.Cover(*MakeGnp());
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].item, 12345u);
  EXPECT_FALSE(cover[0].has_frequency);
  EXPECT_DOUBLE_EQ(cover[0].g_value, std::exp2(-4.0));
}

TEST(GnpSketchTest, RecoversGnpValueNotFrequency) {
  Rng rng(2);
  for (const int64_t freq : {1, 2, 3, 12, 40, 1024, 999}) {
    GnpHeavyHitter hh(TestOptions(), rng);
    hh.Update(777, freq);
    const GCover cover = hh.Cover(*MakeGnp());
    ASSERT_EQ(cover.size(), 1u) << "freq=" << freq;
    EXPECT_DOUBLE_EQ(cover[0].g_value, MakeGnp()->Value(freq))
        << "freq=" << freq;
  }
}

TEST(GnpSketchTest, NegativeFrequencySameGnpValue) {
  Rng rng(3);
  GnpHeavyHitter hh(TestOptions(), rng);
  hh.Update(555, -48);
  const GCover cover = hh.Cover(*MakeGnp());
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_DOUBLE_EQ(cover[0].g_value, std::exp2(-4.0));
}

TEST(GnpSketchTest, SeparatedItemsAllRecovered) {
  Rng rng(4);
  GnpHeavyHitter hh(TestOptions(), rng);
  // A handful of items with distinct low-bit structure; with 64 substreams
  // they land in distinct substreams with high probability for this seed.
  const std::vector<std::pair<ItemId, int64_t>> items = {
      {10, 5}, {200, 6}, {3000, 40}, {40000, 1024}};
  for (const auto& [id, freq] : items) hh.Update(id, freq);
  const GCover cover = hh.Cover(*MakeGnp());
  EXPECT_GE(cover.size(), 3u);  // allow one collision casualty
  for (const GCoverEntry& e : cover) {
    bool known = false;
    for (const auto& [id, freq] : items) {
      if (e.item == id) {
        known = true;
        EXPECT_DOUBLE_EQ(e.g_value, MakeGnp()->Value(freq));
      }
    }
    EXPECT_TRUE(known) << "spurious item " << e.item;
  }
}

TEST(GnpSketchTest, NoFalseReportsOnCancelledStream) {
  Rng rng(5);
  GnpHeavyHitter hh(TestOptions(), rng);
  for (ItemId i = 0; i < 50; ++i) {
    hh.Update(i, 64);
    hh.Update(i, -64);
  }
  EXPECT_TRUE(hh.Cover(*MakeGnp()).empty());
}

TEST(GnpSketchTest, ReportedEntriesAreNeverWrong) {
  // Even under heavy collision pressure (few substreams), the consistency
  // checks mean reported (item, value) pairs are correct -- failures
  // manifest as omissions, not fabrications.
  Rng data_rng(6);
  const Workload w = MakeUniformWorkload(1 << 14, 200, 1, 2000,
                                         StreamShapeOptions{}, data_rng);
  Rng rng(7);
  GnpSketchOptions options = TestOptions();
  options.substreams = 16;  // deliberately undersized
  GnpHeavyHitter hh(options, rng);
  ProcessStream(hh, w.stream);
  const GFunctionPtr gnp = MakeGnp();
  for (const GCoverEntry& e : hh.Cover(*gnp)) {
    ASSERT_TRUE(w.frequencies.contains(e.item)) << "item " << e.item;
    EXPECT_DOUBLE_EQ(e.g_value,
                     gnp->ValueAbs(w.frequencies.at(e.item)));
  }
}

// End-to-end Proposition 54: the g_np sketch plugged into the recursive
// sketch (Theorem 13) estimates g_np-SUM in one pass.
TEST(GnpSketchTest, GnpSumThroughRecursiveSketch) {
  Rng data_rng(8);
  const Workload w = MakeUniformWorkload(1 << 14, 256, 1, 4096,
                                         StreamShapeOptions{}, data_rng);
  const GFunctionPtr gnp = MakeGnp();
  const double truth = ExactGSum(w.frequencies, gnp->AsCallable());

  GnpSketchOptions options = TestOptions();
  options.substreams = 128;
  const GHeavyHitterFactory factory = [options](int /*level*/, Rng& rng) {
    return std::make_unique<GnpHeavyHitter>(options, rng);
  };
  Rng rng(9);
  std::vector<double> errors;
  for (int trial = 0; trial < 5; ++trial) {
    RecursiveGSum sketch(/*levels=*/5, factory, rng);
    for (const Update& u : w.stream.updates()) sketch.Update(u.item, u.delta);
    errors.push_back(RelativeError(sketch.Estimate(*gnp), truth));
  }
  EXPECT_LE(Median(errors), 0.4);
}

TEST(GnpSketchTest, SpaceAccountsCountersAndHashes) {
  Rng rng(10);
  GnpSketchOptions options = TestOptions();
  GnpHeavyHitter hh(options, rng);
  const size_t counters =
      options.substreams * options.trials *
      (static_cast<size_t>(options.id_bits) + 1) * sizeof(int64_t);
  EXPECT_GE(hh.SpaceBytes(), counters);
}

TEST(GnpSketchDeathTest, SinglePassOnly) {
  Rng rng(11);
  GnpHeavyHitter hh(TestOptions(), rng);
  EXPECT_DEATH(hh.AdvancePass(), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
