#include "core/two_pass_hh.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "gfunc/catalog.h"
#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

void RunTwoPasses(TwoPassHeavyHitter& hh, const Stream& stream) {
  for (const Update& u : stream.updates()) hh.Update(u.item, u.delta);
  hh.AdvancePass();
  for (const Update& u : stream.updates()) hh.Update(u.item, u.delta);
}

TEST(TwoPassHHTest, CoverWeightsAreExact) {
  Rng rng(1);
  ItemId heavy = 0;
  const Workload w = MakePlantedHeavyHitterWorkload(
      1 << 12, 300, 10, 50000, StreamShapeOptions{}, rng, &heavy);
  TwoPassHHOptions options;
  options.count_sketch = {5, 512};
  options.candidates = 32;
  TwoPassHeavyHitter hh(options, rng);
  RunTwoPasses(hh, w.stream);

  const GFunctionPtr g = MakePower(2.0);
  const GCover cover = hh.Cover(*g);
  ASSERT_FALSE(cover.empty());
  for (const GCoverEntry& entry : cover) {
    ASSERT_TRUE(w.frequencies.contains(entry.item));
    // Pass 2 tabulates exactly: zero error on both frequency and weight.
    EXPECT_EQ(entry.frequency, w.frequencies.at(entry.item));
    EXPECT_DOUBLE_EQ(entry.g_value, g->ValueAbs(entry.frequency));
    EXPECT_TRUE(entry.has_frequency);
  }
}

TEST(TwoPassHHTest, FindsAllGHeavyHitters) {
  Rng rng(2);
  // Three planted heavies over light background.
  FrequencyMap freq;
  for (ItemId i = 0; i < 400; ++i) freq[i] = 1 + static_cast<int64_t>(i % 5);
  freq[1000] = 20000;
  freq[1001] = 15000;
  freq[1002] = 10000;
  const Workload w =
      MakeStreamFromFrequencies(2048, freq, StreamShapeOptions{}, rng);
  TwoPassHHOptions options;
  options.count_sketch = {5, 1024};
  options.candidates = 16;
  TwoPassHeavyHitter hh(options, rng);
  RunTwoPasses(hh, w.stream);

  const GFunctionPtr g = MakePower(2.0);
  const GCover cover = hh.Cover(*g);
  std::unordered_set<ItemId> covered;
  for (const GCoverEntry& e : cover) covered.insert(e.item);
  for (const auto& [item, value] :
       ExactGHeavyHitters(w.frequencies, g->AsCallable(), 0.05)) {
    EXPECT_TRUE(covered.contains(item)) << "missed heavy item " << item;
  }
}

TEST(TwoPassHHTest, SecondPassIgnoresNonCandidates) {
  Rng rng(3);
  TwoPassHHOptions options;
  options.count_sketch = {5, 256};
  options.candidates = 2;
  TwoPassHeavyHitter hh(options, rng);
  // Two dominant items + noise; only <= 2 candidates survive to pass 2.
  Stream stream(512);
  stream.Append(1, 10000);
  stream.Append(2, 9000);
  for (ItemId i = 10; i < 200; ++i) stream.Append(i, 1);
  RunTwoPasses(hh, stream);
  const GCover cover = hh.Cover(*MakePower(1.0));
  EXPECT_LE(cover.size(), 2u);
}

TEST(TwoPassHHTest, ZeroNetFrequencyCandidateDropped) {
  Rng rng(4);
  TwoPassHHOptions options;
  options.count_sketch = {5, 256};
  options.candidates = 8;
  TwoPassHeavyHitter hh(options, rng);
  Stream stream(64);
  stream.Append(5, 10000);   // looks heavy in pass 1
  stream.Append(5, -10000);  // cancels before pass 1 ends
  stream.Append(7, 500);
  RunTwoPasses(hh, stream);
  for (const GCoverEntry& e : hh.Cover(*MakePower(1.0))) {
    EXPECT_NE(e.item, 5u);
  }
}

TEST(TwoPassHHTest, CoverIndependentOfQueryFunctionFrequencies) {
  Rng rng(5);
  ItemId heavy = 0;
  const Workload w = MakePlantedHeavyHitterWorkload(
      1 << 10, 100, 5, 9999, StreamShapeOptions{}, rng, &heavy);
  TwoPassHHOptions options;
  options.count_sketch = {5, 512};
  options.candidates = 16;
  TwoPassHeavyHitter hh(options, rng);
  RunTwoPasses(hh, w.stream);
  // Same candidate frequencies, different g weights.
  const GCover c1 = hh.Cover(*MakePower(1.0));
  const GCover c2 = hh.Cover(*MakePower(2.0));
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].item, c2[i].item);
    EXPECT_EQ(c1[i].frequency, c2[i].frequency);
  }
}

TEST(TwoPassHHDeathTest, CoverBeforeSecondPassRejected) {
  Rng rng(6);
  TwoPassHHOptions options;
  TwoPassHeavyHitter hh(options, rng);
  hh.Update(1, 5);
  EXPECT_DEATH(hh.Cover(*MakePower(1.0)), "GSTREAM_CHECK");
}

TEST(TwoPassHHDeathTest, ThirdPassRejected) {
  Rng rng(7);
  TwoPassHHOptions options;
  TwoPassHeavyHitter hh(options, rng);
  hh.AdvancePass();
  EXPECT_DEATH(hh.AdvancePass(), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
