#include "core/mle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/generators.h"

namespace gstream {
namespace {

// Builds the sample stream for true parameters (lambda, alpha, beta) by
// discretizing the mixture pmf on [0, support).
Workload SampleStream(double lambda, double alpha, double beta,
                      size_t num_samples, uint64_t seed) {
  std::vector<double> pmf;
  for (int64_t x = 0; x < 64; ++x) {
    pmf.push_back(std::exp(PoissonMixtureLogPmf(lambda, alpha, beta, x)));
  }
  Rng rng(seed);
  return MakeIidSampleWorkload(num_samples, num_samples, pmf,
                               StreamShapeOptions{}, rng);
}

std::vector<MleCandidate> BetaFamily(uint64_t domain) {
  // Candidate hypotheses vary the heavy mode beta; lambda, alpha fixed.
  std::vector<MleCandidate> family;
  for (const double beta : {4.0, 6.0, 8.0, 10.0, 12.0}) {
    family.push_back(MakePoissonMixtureCandidate(0.95, 0.5, beta, domain));
  }
  return family;
}

TEST(MleTest, CandidateScaleAndConstantArePositive) {
  const MleCandidate c = MakePoissonMixtureCandidate(0.95, 0.5, 8.0, 1000);
  EXPECT_GT(c.scale, 0.0);
  EXPECT_GT(c.constant, 0.0);  // -n log p(0), p(0) < 1
  EXPECT_DOUBLE_EQ(c.g->Value(0), 0.0);
  EXPECT_DOUBLE_EQ(c.g->Value(1), 1.0);
}

TEST(MleTest, ExactScoresRecoverTruth) {
  const size_t n = 20000;
  const Workload w = SampleStream(0.95, 0.5, 8.0, n, /*seed=*/5);
  const std::vector<MleCandidate> family = BetaFamily(n);
  const std::vector<double> scores = ExactMleScores(family, w.stream);
  // The true hypothesis (beta = 8, index 2) minimizes the exact NLL.
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] < scores[best]) best = i;
  }
  EXPECT_EQ(best, 2u);
}

TEST(MleTest, ExactScoreEqualsDirectNll) {
  // Cross-check the scale/constant bookkeeping: the reassembled score must
  // equal -sum_i log p(v_i) computed directly.
  const size_t n = 2000;
  const Workload w = SampleStream(0.95, 0.5, 8.0, n, /*seed=*/7);
  const MleCandidate c = MakePoissonMixtureCandidate(0.95, 0.5, 8.0, n);
  const double score = ExactMleScores({c}, w.stream)[0];
  double direct = 0.0;
  const FrequencyMap freq = ExactFrequencies(w.stream);
  for (uint64_t i = 0; i < n; ++i) {
    const auto it = freq.find(i);
    const int64_t v = (it == freq.end()) ? 0 : it->second;
    direct -= PoissonMixtureLogPmf(0.95, 0.5, 8.0, v);
  }
  EXPECT_NEAR(score, direct, 1e-6 * std::fabs(direct));
}

TEST(MleTest, ApproximateMlePicksTrueHypothesis) {
  const size_t n = 20000;
  const Workload w = SampleStream(0.95, 0.5, 8.0, n, /*seed=*/11);
  const std::vector<MleCandidate> family = BetaFamily(n);

  GSumOptions options;
  options.passes = 2;  // exact candidate frequencies -> sharp decode
  options.cs_buckets = 1024;
  options.candidates = 64;
  options.repetitions = 5;
  const MleResult result = ApproximateMle(family, w.stream, n, options);
  EXPECT_EQ(result.best_index, 2u);
  EXPECT_GT(result.space_bytes, 0u);
}

TEST(MleTest, ApproximateScoresTrackExactScores) {
  const size_t n = 20000;
  const Workload w = SampleStream(0.95, 0.5, 8.0, n, /*seed=*/13);
  const std::vector<MleCandidate> family = BetaFamily(n);
  const std::vector<double> exact = ExactMleScores(family, w.stream);

  GSumOptions options;
  options.passes = 2;
  options.cs_buckets = 1024;
  options.candidates = 64;
  options.repetitions = 5;
  const MleResult result = ApproximateMle(family, w.stream, n, options);
  ASSERT_EQ(result.scores.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(result.scores[i] / exact[i], 1.0, 0.15) << "theta " << i;
  }
}

TEST(MleDeathTest, EmptyFamilyRejected) {
  Stream stream(8);
  EXPECT_DEATH(ApproximateMle({}, stream, 8, GSumOptions{}),
               "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
