#include "core/one_pass_hh.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "gfunc/catalog.h"
#include "gfunc/envelope.h"
#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

OnePassHHOptions DefaultOptions() {
  OnePassHHOptions options;
  options.count_sketch = {5, 1024};
  options.ams = {32, 5};
  options.candidates = 32;
  options.epsilon = 0.25;
  options.h_envelope = 1.0;
  return options;
}

TEST(OnePassHHTest, FindsPlantedHeavyHitterForQuadratic) {
  Rng rng(1);
  ItemId heavy = 0;
  const Workload w = MakePlantedHeavyHitterWorkload(
      1 << 12, 300, 10, 50000, StreamShapeOptions{}, rng, &heavy);
  OnePassHeavyHitter hh(DefaultOptions(), rng);
  ProcessStream(hh, w.stream);
  const GFunctionPtr g = MakePower(2.0);
  const GCover cover = hh.Cover(*g);
  bool found = false;
  for (const GCoverEntry& e : cover) {
    if (e.item == heavy) {
      found = true;
      // Weight within (1 +- eps) of the truth (Definition 12 condition 1).
      EXPECT_NEAR(e.g_value, g->ValueAbs(w.frequencies.at(heavy)),
                  0.25 * g->ValueAbs(w.frequencies.at(heavy)));
    }
  }
  EXPECT_TRUE(found);
}

TEST(OnePassHHTest, StableFunctionSurvivesPruning) {
  // g = x^2 is predictable: estimates near a large frequency survive.
  const GFunctionPtr g = MakePower(2.0);
  EXPECT_TRUE(OnePassHeavyHitter::SurvivesPruning(*g, /*v_hat=*/10000,
                                                  /*e=*/100, /*epsilon=*/0.25,
                                                  /*probe_points=*/24));
}

TEST(OnePassHHTest, VariableFunctionPrunedAtVolatileScale) {
  // (2+sin x) x^2 swings by a factor 3 within +-2: any estimate with error
  // radius >= 2 must be pruned under a tight epsilon.
  const GFunctionPtr g = MakeSinModulated();
  EXPECT_FALSE(OnePassHeavyHitter::SurvivesPruning(*g, /*v_hat=*/10000,
                                                   /*e=*/8, /*epsilon=*/0.1,
                                                   /*probe_points=*/24));
}

TEST(OnePassHHTest, ZeroRadiusAlwaysSurvives) {
  const GFunctionPtr g = MakeSinModulated();
  EXPECT_TRUE(OnePassHeavyHitter::SurvivesPruning(*g, 10000, 0, 0.1, 24));
}

TEST(OnePassHHTest, IndicatorSurvivesAnyRadiusAboveIt) {
  // 1(x>0) is constant for x > 0; pruning at radius below v_hat passes.
  const GFunctionPtr g = MakeIndicator();
  EXPECT_TRUE(OnePassHeavyHitter::SurvivesPruning(*g, 1000, 500, 0.1, 24));
  // Radius that reaches 0 (where g drops to 0) fails the stability test.
  EXPECT_FALSE(OnePassHeavyHitter::SurvivesPruning(*g, 100, 200, 0.1, 24));
}

TEST(OnePassHHTest, PruningRadiusPaperTermGoverns) {
  Rng rng(2);
  OnePassHHOptions options = DefaultOptions();
  options.epsilon = 0.5;
  options.h_envelope = 1.0;
  // Few buckets: the CountSketch error bound sqrt(F2/8) ~ 354 exceeds the
  // paper interval (0.5/2) * 1000 = 250, so the paper term governs.
  options.count_sketch = {5, 8};
  OnePassHeavyHitter hh(options, rng);
  hh.Update(1, 1000);  // F2 = 10^6 exactly (single item)
  EXPECT_EQ(hh.PruningRadius(), 250);
}

TEST(OnePassHHTest, PruningRadiusSketchTermGoverns) {
  Rng rng(2);
  OnePassHHOptions options = DefaultOptions();
  options.epsilon = 0.5;
  options.h_envelope = 1.0;
  // Many buckets: sqrt(10^6 / 4096) ~ 15.6 < 250.
  options.count_sketch = {5, 4096};
  OnePassHeavyHitter hh(options, rng);
  hh.Update(1, 1000);
  EXPECT_NEAR(static_cast<double>(hh.PruningRadius()), 15.6, 1.0);
}

TEST(OnePassHHTest, LargerEnvelopeShrinksRadius) {
  Rng rng(3);
  OnePassHHOptions small = DefaultOptions();
  small.h_envelope = 1.0;
  OnePassHHOptions big = DefaultOptions();
  big.h_envelope = 100.0;
  OnePassHeavyHitter hh_small(small, rng);
  OnePassHeavyHitter hh_big(big, rng);
  hh_small.Update(1, 10000);
  hh_big.Update(1, 10000);
  // h=1: radius = min(1250, sqrt(1e8/1024)) = 312; h=100: 12.
  EXPECT_GT(hh_small.PruningRadius(), hh_big.PruningRadius() * 20);
}

TEST(OnePassHHTest, CoverRespectsEpsilonOnZipf) {
  Rng rng(4);
  const Workload w = MakeZipfWorkload(1 << 12, 500, 1.4, 100000,
                                      StreamShapeOptions{}, rng);
  OnePassHHOptions options = DefaultOptions();
  options.count_sketch = {7, 4096};
  OnePassHeavyHitter hh(options, rng);
  ProcessStream(hh, w.stream);
  const GFunctionPtr g = MakeX2Log();
  for (const GCoverEntry& e : hh.Cover(*g)) {
    ASSERT_TRUE(w.frequencies.contains(e.item));
    const double truth = g->ValueAbs(w.frequencies.at(e.item));
    EXPECT_LE(std::fabs(e.g_value - truth), 0.3 * truth)
        << "item " << e.item;
  }
}

TEST(OnePassHHDeathTest, NoSecondPass) {
  Rng rng(5);
  OnePassHeavyHitter hh(DefaultOptions(), rng);
  EXPECT_DEATH(hh.AdvancePass(), "GSTREAM_CHECK");
}

TEST(OnePassHHDeathTest, RejectsEnvelopeBelowOne) {
  Rng rng(6);
  OnePassHHOptions options = DefaultOptions();
  options.h_envelope = 0.5;
  EXPECT_DEATH(OnePassHeavyHitter(options, rng), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
