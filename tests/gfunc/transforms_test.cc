#include "gfunc/transforms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gfunc/classifier.h"
#include "gfunc/metric.h"
#include "gfunc/properties.h"

namespace gstream {
namespace {

TEST(LEtaTransformTest, ValuesMatchDefinition55) {
  const GFunctionPtr base = MakePower(2.0);
  const GFunctionPtr lg = MakeLEtaTransform(base, 1.0);
  // L_1(x^2)(x) = x^2 log(1+x), renormalized by 1/log 2.
  EXPECT_DOUBLE_EQ(lg->Value(0), 0.0);
  EXPECT_DOUBLE_EQ(lg->Value(1), 1.0);
  EXPECT_NEAR(lg->Value(10), 100.0 * std::log(11.0) / std::log(2.0), 1e-9);
}

TEST(LEtaTransformTest, EtaZeroIsIdentityUpToScale) {
  const GFunctionPtr base = MakeX2Log();
  const GFunctionPtr same = MakeLEtaTransform(base, 0.0);
  for (int64_t x : {1, 5, 100, 10000}) {
    EXPECT_NEAR(same->Value(x), base->Value(x), 1e-9 * base->Value(x));
  }
}

// Theorem 31: L_eta preserves the three properties of a 1-pass tractable
// normal function.  (eta = 0.5 keeps the alpha = 0.25 finite-domain
// instantiation of slow-jumping meaningful: for larger eta the x = 1
// violations of g(y) <= y^{2+alpha} persist to ~2^30, far beyond any
// domain we can probe, even though the asymptotic property holds.)
TEST(LEtaTransformTest, PreservesTractabilityOfQuadratic) {
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  const GFunctionPtr lg = MakeLEtaTransform(MakePower(2.0), 0.5);
  const ClassificationResult r = Classify(*lg, options);
  EXPECT_EQ(r.verdict, Verdict::kOnePassTractable);
}

// Theorem 30: L_eta breaks every nearly periodic function -- L_eta(g_np)
// is no longer slow-dropping *and* no longer nearly periodic.
TEST(LEtaTransformTest, BreaksGnp) {
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  const GFunctionPtr lg = MakeLEtaTransform(MakeGnp(), 1.0);
  const ClassificationResult r = Classify(*lg, options);
  EXPECT_EQ(r.verdict, Verdict::kIntractable);
  EXPECT_FALSE(r.slow_dropping.holds);
  EXPECT_FALSE(r.nearly_periodic.holds);
}

TEST(OverrideGTest, OverridesSelectedPointsOnly) {
  const GFunctionPtr base = MakePower(2.0);
  const GFunctionPtr h = MakeOverrideG(base, {{10, 5.0}, {20, 7.0}});
  EXPECT_DOUBLE_EQ(h->Value(10), 5.0);
  EXPECT_DOUBLE_EQ(h->Value(20), 7.0);
  EXPECT_DOUBLE_EQ(h->Value(11), 121.0);
  EXPECT_DOUBLE_EQ(h->Value(0), 0.0);
}

// Theorem 64: perturbing a nearly periodic g at its period pairs by (1 +
// delta) yields h at Theta distance exactly log(1+delta) that is 1-pass
// intractable (not slow-dropping, not nearly periodic).
TEST(Theorem64Test, PerturbationDistanceAndIntractability) {
  const double delta = 0.5;
  const GFunctionPtr g = MakeGnp();
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int k = 6; k <= 14; ++k) {
    // (x_k, y_k) with x_k odd (g=1) and y_k = 2^k an alpha-period.
    pairs.emplace_back((int64_t{1} << (k - 1)) + 1, int64_t{1} << k);
  }
  const GFunctionPtr h = MakeTheorem64Perturbation(g, pairs, delta);

  EXPECT_NEAR(ThetaDistance(*g, *h, 1 << 15), std::log1p(delta), 1e-9);

  PropertyCheckOptions options;
  options.domain_max = 1 << 15;
  const ClassificationResult r = Classify(*h, options);
  EXPECT_FALSE(r.slow_dropping.holds);
  EXPECT_FALSE(r.nearly_periodic.holds)
      << "witness x=" << r.nearly_periodic.x
      << " y=" << r.nearly_periodic.y;
  EXPECT_EQ(r.verdict, Verdict::kIntractable);
}

TEST(Theorem64DeathTest, RejectsNonPositiveDelta) {
  EXPECT_DEATH(MakeTheorem64Perturbation(MakeGnp(), {{3, 8}}, 0.0),
               "GSTREAM_CHECK");
}

TEST(OverrideGDeathTest, RejectsNonPositiveOverride) {
  EXPECT_DEATH(MakeOverrideG(MakePower(2.0), {{4, 0.0}}), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
