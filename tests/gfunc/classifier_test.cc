#include "gfunc/classifier.h"

#include <gtest/gtest.h>

namespace gstream {
namespace {

PropertyCheckOptions MediumDomain() {
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  return options;
}

// Representative verdicts on a medium domain (fast); the full catalog sweep
// on the default domain lives in properties_test / experiment E10.
TEST(ClassifierTest, QuadraticIsOnePass) {
  const ClassificationResult r = Classify(*MakePower(2.0), MediumDomain());
  EXPECT_EQ(r.verdict, Verdict::kOnePassTractable);
  EXPECT_TRUE(r.slow_jumping.holds);
  EXPECT_TRUE(r.slow_dropping.holds);
  EXPECT_TRUE(r.predictable.holds);
}

TEST(ClassifierTest, SinModulatedIsTwoPassOnly) {
  // The sin-modulated quadratic needs a deeper domain than the other
  // cases: its alpha=0.25 slow-jumping violations (trough x, peak y ~ 2x)
  // only die out around x ~ 2^15, so the persistence cutoff must sit
  // above that.
  PropertyCheckOptions options;
  options.domain_max = 1 << 18;
  const ClassificationResult r = Classify(*MakeSinModulated(), options);
  EXPECT_EQ(r.verdict, Verdict::kTwoPassTractable);
  EXPECT_TRUE(r.slow_jumping.holds);
  EXPECT_TRUE(r.slow_dropping.holds);
  EXPECT_FALSE(r.predictable.holds);
}

TEST(ClassifierTest, CubicIsIntractable) {
  const ClassificationResult r = Classify(*MakePower(3.0), MediumDomain());
  EXPECT_EQ(r.verdict, Verdict::kIntractable);
  EXPECT_FALSE(r.slow_jumping.holds);
  EXPECT_FALSE(r.nearly_periodic.holds);
}

TEST(ClassifierTest, InverseIsIntractable) {
  const ClassificationResult r =
      Classify(*MakeInversePoly(1.0), MediumDomain());
  EXPECT_EQ(r.verdict, Verdict::kIntractable);
  EXPECT_FALSE(r.slow_dropping.holds);
  EXPECT_FALSE(r.nearly_periodic.holds);
}

TEST(ClassifierTest, GnpIsNearlyPeriodic) {
  const ClassificationResult r = Classify(*MakeGnp(), MediumDomain());
  EXPECT_EQ(r.verdict, Verdict::kNearlyPeriodic);
  EXPECT_FALSE(r.slow_dropping.holds);
  EXPECT_TRUE(r.nearly_periodic.holds);
}

TEST(ClassifierTest, ReportsEnvelope) {
  const ClassificationResult r = Classify(*MakePower(2.0), MediumDomain());
  EXPECT_DOUBLE_EQ(r.h_envelope, 1.0);
  const ClassificationResult r3 = Classify(*MakePower(3.0), MediumDomain());
  EXPECT_GT(r3.h_envelope, 1000.0);
}

// Proposition 10 in spirit: every verdict is one of the four classes and
// tractable verdicts imply both slow properties.
TEST(ClassifierTest, VerdictConsistency) {
  for (const GFunctionPtr& g :
       {MakePower(1.0), MakeX2Log(), MakeSinSqrtModulated(),
        MakeSpamClickFee(16)}) {
    SCOPED_TRACE(g->name());
    const ClassificationResult r = Classify(*g, MediumDomain());
    if (r.verdict == Verdict::kOnePassTractable ||
        r.verdict == Verdict::kTwoPassTractable) {
      EXPECT_TRUE(r.slow_jumping.holds);
      EXPECT_TRUE(r.slow_dropping.holds);
    }
    if (r.verdict == Verdict::kOnePassTractable) {
      EXPECT_TRUE(r.predictable.holds);
    }
  }
}

}  // namespace
}  // namespace gstream
