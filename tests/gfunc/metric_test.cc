#include "gfunc/metric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gfunc/catalog.h"
#include "gfunc/properties.h"
#include "gfunc/transforms.h"

namespace gstream {
namespace {

constexpr int64_t kDomain = 1 << 12;

TEST(ThetaMetricTest, IdenticalFunctionsAtDistanceZero) {
  const GFunctionPtr g = MakeX2Log();
  EXPECT_DOUBLE_EQ(ThetaDistance(*g, *g, kDomain), 0.0);
}

TEST(ThetaMetricTest, Symmetry) {
  const GFunctionPtr g = MakePower(2.0);
  const GFunctionPtr h = MakeX2Log();
  EXPECT_DOUBLE_EQ(ThetaDistance(*g, *h, kDomain),
                   ThetaDistance(*h, *g, kDomain));
}

TEST(ThetaMetricTest, TriangleInequality) {
  const GFunctionPtr a = MakePower(1.5);
  const GFunctionPtr b = MakePower(2.0);
  const GFunctionPtr c = MakeX2Log();
  EXPECT_LE(ThetaDistance(*a, *c, kDomain),
            ThetaDistance(*a, *b, kDomain) +
                ThetaDistance(*b, *c, kDomain) + 1e-12);
}

TEST(ThetaMetricTest, PointwiseScalingGivesLogDistance) {
  const GFunctionPtr g = MakePower(2.0);
  std::unordered_map<int64_t, double> overrides;
  for (int64_t x = 1; x <= kDomain; ++x) {
    overrides[x] = g->Value(x) * 3.0;
  }
  const GFunctionPtr h = MakeOverrideG(g, std::move(overrides));
  EXPECT_NEAR(ThetaDistance(*g, *h, kDomain), std::log(3.0), 1e-12);
}

TEST(ThetaMetricTest, PowerGapGrowsWithDomain) {
  // Theta(x^2, x^3) = sup log x = log(max_x): unbounded, reflecting that
  // the two lie in different tractability classes.
  const GFunctionPtr g = MakePower(2.0);
  const GFunctionPtr h = MakePower(3.0);
  EXPECT_NEAR(ThetaDistance(*g, *h, 1024), std::log(1024.0), 1e-9);
  EXPECT_NEAR(ThetaDistance(*g, *h, 4096), std::log(4096.0), 1e-9);
}

// Proposition 63: a finite-Theta perturbation of a slow-jumping,
// slow-dropping function keeps both properties.
TEST(Proposition63Test, BoundedPerturbationPreservesSlowProperties) {
  const GFunctionPtr g = MakePower(2.0);
  // Perturb every point by a factor in [0.8, 1.25] (deterministic
  // pattern).  The band is chosen so the alpha = 0.25 finite-domain check
  // stays conclusive: a wider band (say [0.5, 2]) would create adjacent
  // x < y < 2x jumps of ratio 16 that only fall under x^alpha at
  // x ~ 2^16, outside the probe window, despite being asymptotically fine.
  std::unordered_map<int64_t, double> overrides;
  for (int64_t x = 1; x <= (1 << 16); ++x) {
    const double factor = (x % 3 == 0) ? 0.8 : ((x % 3 == 1) ? 1.25 : 1.1);
    overrides[x] = g->Value(x) * factor;
  }
  const GFunctionPtr h = MakeOverrideG(g, std::move(overrides));
  EXPECT_LE(ThetaDistance(*g, *h, 1 << 16), std::log(1.25) + 1e-12);

  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  EXPECT_TRUE(CheckSlowJumping(*h, options).holds);
  EXPECT_TRUE(CheckSlowDropping(*h, options).holds);
}

}  // namespace
}  // namespace gstream
