#include "gfunc/envelope.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gfunc/catalog.h"

namespace gstream {
namespace {

TEST(DropEnvelopeTest, MonotoneIncreasingFunctionHasUnitEnvelope) {
  const auto table = EvaluateTable(*MakePower(2.0), 4096);
  EXPECT_DOUBLE_EQ(DropEnvelope(table), 1.0);
}

TEST(DropEnvelopeTest, InverseFunctionEnvelopeIsDomainSize) {
  // g = 1/x on [1, M]: worst drop is g(1)/g(M) = M.
  const int64_t m = 1024;
  const auto table = EvaluateTable(*MakeInversePoly(1.0), m);
  EXPECT_NEAR(DropEnvelope(table), static_cast<double>(m), 1e-6);
}

TEST(DropEnvelopeTest, GnpEnvelopeIsLargestPowerOfTwo) {
  const auto table = EvaluateTable(*MakeGnp(), 1 << 10);
  EXPECT_DOUBLE_EQ(DropEnvelope(table), 1024.0);
}

TEST(DropEnvelopeTest, SinModulatedBoundedByNine) {
  // (2+sin)x^2 normalized: drops only via the modulation, a factor <= 3
  // squared ratio at adjacent scales; the envelope stays a small constant.
  const auto table = EvaluateTable(*MakeSinModulated(), 1 << 12);
  EXPECT_GE(DropEnvelope(table), 1.0);
  EXPECT_LE(DropEnvelope(table), 3.1);
}

TEST(JumpEnvelopeTest, QuadraticIsTight) {
  // g = x^2 grows exactly quadratically: H_j = 1.
  const auto table = EvaluateTable(*MakePower(2.0), 4096);
  EXPECT_DOUBLE_EQ(JumpEnvelope(table), 1.0);
}

TEST(JumpEnvelopeTest, CubicEnvelopeIsDomainSize) {
  // g = x^3: g(y) x^2 / (y^2 g(x)) maximized at x=1, y=M gives M.
  const int64_t m = 2048;
  const auto table = EvaluateTable(*MakePower(3.0), m);
  EXPECT_NEAR(JumpEnvelope(table), static_cast<double>(m), 1e-6);
}

TEST(JumpEnvelopeTest, SubQuadraticPowersStayConstant) {
  for (double p : {0.5, 1.0, 1.5, 2.0}) {
    const auto table = EvaluateTable(*MakePower(p), 4096);
    EXPECT_LE(JumpEnvelope(table), 1.0 + 1e-9) << "p=" << p;
  }
}

TEST(HEnvelopeTest, IsMaxOfBothAndAtLeastOne) {
  const auto table = EvaluateTable(*MakeX2Log(), 4096);
  const double h = HEnvelope(table);
  EXPECT_GE(h, DropEnvelope(table));
  EXPECT_GE(h, JumpEnvelope(table));
  EXPECT_GE(h, 1.0);
}

TEST(HEnvelopeTest, TractableFunctionsHaveSmallEnvelopes) {
  // The quantitative heart of Lemma 17: for the 1-pass tractable catalog
  // functions, H(M) stays polylogarithmic -- here simply "small" on M=2^16.
  for (const CatalogEntry& entry : BuiltinCatalog()) {
    if (entry.expected_verdict != Verdict::kOnePassTractable) continue;
    SCOPED_TRACE(entry.g->name());
    const auto table = EvaluateTable(*entry.g, 1 << 16);
    EXPECT_LE(HEnvelope(table), 32.0);
  }
}

TEST(HEnvelopeTest, IntractableFunctionsBlowUp) {
  for (const CatalogEntry& entry : BuiltinCatalog()) {
    if (entry.expected_verdict != Verdict::kIntractable) continue;
    SCOPED_TRACE(entry.g->name());
    const auto table = EvaluateTable(*entry.g, 1 << 16);
    // Polynomially large: at least M^0.5 = 256 on this domain.
    EXPECT_GE(HEnvelope(table), 256.0);
  }
}

TEST(PredictabilityRadiusTest, QuadraticRadiusScalesLinearly) {
  const GFunctionPtr g = MakePower(2.0);
  // |(x+r)^2 - x^2| <= eps x^2 roughly when r <= eps x / 2.
  const int64_t r1000 = PredictabilityRadius(*g, 1000, 0.2, 1 << 20);
  EXPECT_GE(r1000, 80);
  EXPECT_LE(r1000, 105);
  const int64_t r2000 = PredictabilityRadius(*g, 2000, 0.2, 1 << 20);
  EXPECT_NEAR(static_cast<double>(r2000) / static_cast<double>(r1000), 2.0,
              0.2);
}

TEST(PredictabilityRadiusTest, IndicatorHasUnboundedRadius) {
  const GFunctionPtr g = MakeIndicator();
  // Constant on x > 0... until the window reaches 0 where g drops to 0.
  EXPECT_EQ(PredictabilityRadius(*g, 100, 0.5, 50), 50);
  EXPECT_EQ(PredictabilityRadius(*g, 100, 0.5, 1 << 12), 99);
}

TEST(PredictabilityRadiusTest, SinModulatedRadiusIsTiny) {
  const GFunctionPtr g = MakeSinModulated();
  // (2+sin x) swings by a constant within a couple of integers.
  EXPECT_LE(PredictabilityRadius(*g, 100000, 0.1, 1 << 12), 4);
}

TEST(PredictabilityRadiusTest, CapRespected) {
  const GFunctionPtr g = MakeIndicator();
  EXPECT_EQ(PredictabilityRadius(*g, 10, 0.5, 3), 3);
}

}  // namespace
}  // namespace gstream
