#include "gfunc/catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gstream {
namespace {

// Class-G normalization: every catalog function has g(0) = 0, g(1) = 1 and
// g(x) > 0 elsewhere.
TEST(CatalogTest, AllEntriesNormalized) {
  for (const CatalogEntry& entry : BuiltinCatalog()) {
    SCOPED_TRACE(entry.g->name());
    EXPECT_DOUBLE_EQ(entry.g->Value(0), 0.0);
    EXPECT_DOUBLE_EQ(entry.g->Value(1), 1.0);
    for (int64_t x : {2, 3, 5, 17, 100, 1000}) {
      EXPECT_GT(entry.g->Value(x), 0.0) << "x=" << x;
    }
  }
}

TEST(CatalogTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const CatalogEntry& entry : BuiltinCatalog()) {
    EXPECT_TRUE(names.insert(entry.g->name()).second) << entry.g->name();
  }
}

TEST(CatalogTest, ValueAbsIsSymmetricExtension) {
  const GFunctionPtr g = MakePower(2.0);
  EXPECT_DOUBLE_EQ(g->ValueAbs(-5), g->Value(5));
  EXPECT_DOUBLE_EQ(g->ValueAbs(5), 25.0);
}

TEST(CatalogTest, PowerValues) {
  const GFunctionPtr sq = MakePower(2.0);
  EXPECT_DOUBLE_EQ(sq->Value(3), 9.0);
  EXPECT_DOUBLE_EQ(sq->Value(10), 100.0);
  const GFunctionPtr p15 = MakePower(1.5);
  EXPECT_NEAR(p15->Value(4), 8.0, 1e-12);
}

TEST(CatalogTest, IndicatorIsF0) {
  const GFunctionPtr ind = MakeIndicator();
  EXPECT_DOUBLE_EQ(ind->Value(0), 0.0);
  for (int64_t x : {1, 2, 1000000}) EXPECT_DOUBLE_EQ(ind->Value(x), 1.0);
}

TEST(CatalogTest, X2LogValues) {
  const GFunctionPtr g = MakeX2Log();
  // raw(1) = lg 2 = 1 so no rescale: g(3) = 9 * lg 4 = 18.
  EXPECT_NEAR(g->Value(3), 18.0, 1e-9);
}

TEST(CatalogTest, GnpMatchesDefinition52) {
  const GFunctionPtr g = MakeGnp();
  EXPECT_DOUBLE_EQ(g->Value(1), 1.0);
  EXPECT_DOUBLE_EQ(g->Value(2), 0.5);
  EXPECT_DOUBLE_EQ(g->Value(3), 1.0);
  EXPECT_DOUBLE_EQ(g->Value(4), 0.25);
  EXPECT_DOUBLE_EQ(g->Value(6), 0.5);
  EXPECT_DOUBLE_EQ(g->Value(1024), std::exp2(-10.0));
  EXPECT_DOUBLE_EQ(g->Value(1025), 1.0);
}

TEST(CatalogTest, GnpNearPeriodicityAnecdote) {
  // The paper's example: g_np(2^k + 1) = g_np(1) despite g_np(2^k) = 2^-k.
  const GFunctionPtr g = MakeGnp();
  for (int k = 3; k <= 16; ++k) {
    const int64_t period = int64_t{1} << k;
    EXPECT_DOUBLE_EQ(g->Value(period + 1), g->Value(1));
    EXPECT_DOUBLE_EQ(g->Value(period), std::exp2(-k));
  }
}

TEST(CatalogTest, SpamClickFeeShape) {
  const GFunctionPtr g = MakeSpamClickFee(16);
  EXPECT_DOUBLE_EQ(g->Value(1), 1.0);
  EXPECT_DOUBLE_EQ(g->Value(16), 16.0);   // peak at the threshold
  EXPECT_DOUBLE_EQ(g->Value(20), 12.0);   // discounted
  EXPECT_DOUBLE_EQ(g->Value(31), 1.0);    // floor reached
  EXPECT_DOUBLE_EQ(g->Value(1000), 1.0);  // stays at the floor
}

TEST(CatalogTest, SpamClickFeeNonMonotone) {
  const GFunctionPtr g = MakeSpamClickFee(16);
  EXPECT_GT(g->Value(16), g->Value(24));
  EXPECT_GT(g->Value(24), g->Value(40));
}

TEST(CatalogTest, PoissonMixtureNonMonotone) {
  // lambda=0.95, alpha=0.5, beta=8: the second mixture mode creates a dip
  // in -log p around x = 8.
  const GFunctionPtr g = MakePoissonMixtureNll(0.95, 0.5, 8.0);
  EXPECT_GT(g->Value(4), g->Value(8));
  EXPECT_GT(g->Value(20), g->Value(8));
}

TEST(CatalogTest, PoissonMixtureLogPmfNormalizes) {
  // The pmf over a generous support should sum to ~1.
  double total = 0.0;
  for (int64_t x = 0; x <= 200; ++x) {
    total += std::exp(PoissonMixtureLogPmf(0.95, 0.5, 8.0, x));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CatalogTest, ExponentialSaturates) {
  const GFunctionPtr g = MakeExponential();
  EXPECT_DOUBLE_EQ(g->Value(10), 512.0);  // 2^10 / 2^1
  EXPECT_LT(g->Value(5000), 1e301);       // saturated, finite
  EXPECT_GT(g->Value(5000), 0.0);
}

TEST(CatalogTest, InverseFunctionsDecrease) {
  const GFunctionPtr inv = MakeInversePoly(1.0);
  EXPECT_DOUBLE_EQ(inv->Value(2), 0.5);
  EXPECT_DOUBLE_EQ(inv->Value(10), 0.1);
  const GFunctionPtr invlog = MakeInverseLog();
  EXPECT_GT(invlog->Value(10), invlog->Value(1000));
  // Sub-polynomial decay: much slower than 1/x.
  EXPECT_GT(invlog->Value(1000), inv->Value(1000) * 10);
}

TEST(CatalogTest, SinModulatedWithinEnvelope) {
  for (const GFunctionPtr g :
       {MakeSinModulated(), MakeSinSqrtModulated(), MakeSinLogModulated()}) {
    SCOPED_TRACE(g->name());
    for (int64_t x : {2, 10, 100, 5000, 100000}) {
      const double xd = static_cast<double>(x);
      const double v = g->Value(x);
      // Raw shape lies in [x^2, 3 x^2]; normalization divides by raw(1)
      // which is in [1, 3].
      EXPECT_GE(v, xd * xd / 3.0);
      EXPECT_LE(v, 3.0 * xd * xd);
    }
  }
}

TEST(CatalogTest, ExpSqrtLogSubPolynomialGrowth) {
  const GFunctionPtr g = MakeExpSqrtLog();
  // Grows without bound but slower than any polynomial: g(x) / x^0.25
  // shrinks between two large probes.
  const double a = g->Value(1 << 10) / std::pow(2.0, 10.0 * 0.25);
  const double b = g->Value(int64_t{1} << 40) / std::pow(2.0, 40.0 * 0.25);
  EXPECT_GT(g->Value(int64_t{1} << 40), g->Value(1 << 10));
  EXPECT_LT(b, a);
}

TEST(CatalogTest, EvaluateTableMatchesPointQueries) {
  const GFunctionPtr g = MakeX2Log();
  const std::vector<double> table = EvaluateTable(*g, 100);
  ASSERT_EQ(table.size(), 101u);
  for (int64_t x = 0; x <= 100; ++x) {
    EXPECT_DOUBLE_EQ(table[static_cast<size_t>(x)], g->Value(x));
  }
}

TEST(CatalogTest, VerdictNames) {
  EXPECT_EQ(VerdictName(Verdict::kOnePassTractable), "1-pass");
  EXPECT_EQ(VerdictName(Verdict::kTwoPassTractable), "2-pass");
  EXPECT_EQ(VerdictName(Verdict::kIntractable), "intractable");
  EXPECT_EQ(VerdictName(Verdict::kNearlyPeriodic), "nearly-periodic");
}

TEST(CatalogDeathTest, PoissonMixtureRequiresModeAtZero) {
  // alpha large makes p(1) > p(0): the shifted NLL would go negative.
  EXPECT_DEATH(MakePoissonMixtureNll(0.5, 4.0, 8.0), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
