#include "gfunc/g0.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gfunc/transforms.h"

namespace gstream {
namespace {

PropertyCheckOptions SmallDomain() {
  PropertyCheckOptions options;
  options.domain_max = 1 << 14;
  return options;
}

TEST(G0FunctionTest, PinsValueAtZeroOnly) {
  const GFunctionPtr g = MakeG0Function(MakePower(2.0), 1.0);
  EXPECT_DOUBLE_EQ(g->Value(0), 1.0);
  EXPECT_DOUBLE_EQ(g->Value(1), 1.0);
  EXPECT_DOUBLE_EQ(g->Value(5), 25.0);
}

TEST(G0ScreenTest, PositiveFunctionCleanScreen) {
  const GFunctionPtr g = MakeG0Function(MakePower(2.0), 1.0);
  const G0ScreenResult screen = ScreenG0(*g, 1 << 12);
  EXPECT_FALSE(screen.crosses_axis);
  EXPECT_FALSE(screen.has_zero_point);
}

TEST(G0ScreenTest, DetectsAxisCrossing) {
  // Override one point of x^2 to a negative value (a cos-like dip).
  class Crossing : public GFunction {
   public:
    double Value(int64_t x) const override {
      if (x == 0) return 1.0;
      return (x == 7) ? -3.0 : static_cast<double>(x);
    }
    std::string name() const override { return "crossing"; }
  };
  const G0ScreenResult screen = ScreenG0(Crossing(), 1 << 10);
  EXPECT_TRUE(screen.crosses_axis);
  EXPECT_EQ(screen.negative_witness, 7);
}

TEST(G0ScreenTest, DetectsZeroPointWithoutPeriodicity) {
  class ZeroAt5 : public GFunction {
   public:
    double Value(int64_t x) const override {
      if (x == 0) return 1.0;
      return (x == 5) ? 0.0 : static_cast<double>(x);
    }
    std::string name() const override { return "zero_at_5"; }
  };
  const G0ScreenResult screen = ScreenG0(ZeroAt5(), 1 << 10);
  EXPECT_TRUE(screen.has_zero_point);
  EXPECT_EQ(screen.zero_witness, 5);
  EXPECT_FALSE(screen.periodic_escape);
}

TEST(G0ScreenTest, PeriodicZeroEscapes) {
  // Proposition 38's escape: period 2 * zero point, e.g. |sin(pi x / 2)|
  // discretized -- zeros at even x, period 4 from zero at 2... simplest:
  // g with period 2 and zero at 1: g(odd) = 0, g(even) = 1.
  class Alternating : public GFunction {
   public:
    double Value(int64_t x) const override {
      return (x % 2 == 0) ? 1.0 : 0.0;
    }
    std::string name() const override { return "alternating"; }
  };
  const G0ScreenResult screen = ScreenG0(Alternating(), 1 << 10);
  EXPECT_TRUE(screen.has_zero_point);
  EXPECT_EQ(screen.zero_witness, 1);
  EXPECT_TRUE(screen.periodic_escape);
}

TEST(G0ClassifyTest, AxisCrossingIsOmegaN) {
  class Crossing : public GFunction {
   public:
    double Value(int64_t x) const override {
      if (x == 0) return 1.0;
      return (x == 7) ? -3.0 : static_cast<double>(x);
    }
    std::string name() const override { return "crossing"; }
  };
  const G0Classification result = ClassifyG0(Crossing(), SmallDomain());
  EXPECT_TRUE(result.omega_n);
  EXPECT_EQ(result.verdict, Verdict::kIntractable);
}

TEST(G0ClassifyTest, PositiveG0FollowsTheLaw) {
  // Theorems 39-41: for strictly positive g0 the restriction to x >= 1
  // obeys the same zero-one law.
  const G0Classification quad =
      ClassifyG0(*MakeG0Function(MakePower(2.0), 1.0), SmallDomain());
  EXPECT_FALSE(quad.omega_n);
  EXPECT_EQ(quad.verdict, Verdict::kOnePassTractable);

  const G0Classification inv =
      ClassifyG0(*MakeG0Function(MakeInversePoly(1.0), 2.0), SmallDomain());
  EXPECT_FALSE(inv.omega_n);
  EXPECT_EQ(inv.verdict, Verdict::kIntractable);
}

TEST(G0ClassifyTest, PeriodicZeroClassifiedAsEscape) {
  class Alternating : public GFunction {
   public:
    double Value(int64_t x) const override {
      return (x % 2 == 0) ? 1.0 : 0.0;
    }
    std::string name() const override { return "alternating"; }
  };
  const G0Classification result =
      ClassifyG0(Alternating(), SmallDomain());
  EXPECT_EQ(result.verdict, Verdict::kNearlyPeriodic);
}

TEST(G0ClassifyTest, NonPeriodicZeroIntractable) {
  class ZeroAt5 : public GFunction {
   public:
    double Value(int64_t x) const override {
      if (x == 0) return 1.0;
      return (x == 5) ? 0.0 : static_cast<double>(x);
    }
    std::string name() const override { return "zero_at_5"; }
  };
  const G0Classification result = ClassifyG0(ZeroAt5(), SmallDomain());
  EXPECT_FALSE(result.omega_n);
  EXPECT_EQ(result.verdict, Verdict::kIntractable);
}

TEST(G0FunctionDeathTest, RejectsNonPositiveAtZero) {
  EXPECT_DEATH(MakeG0Function(MakePower(2.0), 0.0), "GSTREAM_CHECK");
}

}  // namespace
}  // namespace gstream
