#include "gfunc/properties.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>

#include "gfunc/catalog.h"

namespace gstream {
namespace {

PropertyCheckOptions OptionsForEntry(const CatalogEntry& entry) {
  PropertyCheckOptions options;
  if (entry.classify_domain_hint > 0) {
    options.domain_max = entry.classify_domain_hint;
  }
  return options;
}

// The three property checkers reproduce the paper's ground-truth columns
// for every catalog function (Definitions 6-8, worked examples of Sections
// 3 and 4.6); this is the library's core characterization machinery.
class CatalogPropertySweep : public ::testing::TestWithParam<size_t> {
 protected:
  static const std::vector<CatalogEntry>& Catalog() {
    static const std::vector<CatalogEntry>* catalog =
        new std::vector<CatalogEntry>(BuiltinCatalog());
    return *catalog;
  }
};

TEST_P(CatalogPropertySweep, SlowJumpingMatchesPaper) {
  const CatalogEntry& entry = Catalog()[GetParam()];
  SCOPED_TRACE(entry.g->name());
  const PropertyResult r =
      CheckSlowJumping(*entry.g, OptionsForEntry(entry));
  EXPECT_EQ(r.holds, entry.slow_jumping)
      << "witness x=" << r.x << " y=" << r.y << " lhs=" << r.lhs
      << " rhs=" << r.rhs;
}

TEST_P(CatalogPropertySweep, SlowDroppingMatchesPaper) {
  const CatalogEntry& entry = Catalog()[GetParam()];
  SCOPED_TRACE(entry.g->name());
  const PropertyResult r =
      CheckSlowDropping(*entry.g, OptionsForEntry(entry));
  EXPECT_EQ(r.holds, entry.slow_dropping)
      << "witness x=" << r.x << " y=" << r.y << " lhs=" << r.lhs
      << " rhs=" << r.rhs;
}

TEST_P(CatalogPropertySweep, PredictableMatchesPaper) {
  const CatalogEntry& entry = Catalog()[GetParam()];
  SCOPED_TRACE(entry.g->name());
  const PropertyResult r =
      CheckPredictable(*entry.g, OptionsForEntry(entry));
  EXPECT_EQ(r.holds, entry.predictable)
      << "witness x=" << r.x << " y=" << r.y << " lhs=" << r.lhs
      << " rhs=" << r.rhs;
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogFunctions, CatalogPropertySweep,
    ::testing::Range<size_t>(0, BuiltinCatalog().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = BuiltinCatalog()[info.param].g->name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(NearlyPeriodicScreenTest, GnpPasses) {
  const PropertyResult r =
      CheckNearlyPeriodic(*MakeGnp(), PropertyCheckOptions{});
  EXPECT_TRUE(r.holds);
}

TEST(NearlyPeriodicScreenTest, InversePolyFails) {
  // 1/x has persistent drops (condition 1 holds) but the drops are not
  // repaired: g(x + y) is far from g(x).
  const PropertyResult r =
      CheckNearlyPeriodic(*MakeInversePoly(1.0), PropertyCheckOptions{});
  EXPECT_FALSE(r.holds);
}

TEST(NearlyPeriodicScreenTest, PowerHasNoPeriods) {
  // x^3 never drops, so condition 1 of Definition 9 fails outright.
  const PropertyResult r =
      CheckNearlyPeriodic(*MakePower(3.0), PropertyCheckOptions{});
  EXPECT_FALSE(r.holds);
}

TEST(PropertyCheckerTest, SlowDroppingWitnessIsConcrete) {
  PropertyCheckOptions options;
  const PropertyResult r = CheckSlowDropping(*MakeInversePoly(1.0), options);
  ASSERT_FALSE(r.holds);
  // The reported witness must genuinely violate Definition 7.
  const GFunctionPtr g = MakeInversePoly(1.0);
  EXPECT_LT(r.x, r.y);
  EXPECT_LT(g->Value(r.y),
            g->Value(r.x) / std::pow(static_cast<double>(r.y),
                                     options.alpha));
}

TEST(PropertyCheckerTest, SlowJumpingWitnessIsConcrete) {
  PropertyCheckOptions options;
  const PropertyResult r = CheckSlowJumping(*MakePower(3.0), options);
  ASSERT_FALSE(r.holds);
  const GFunctionPtr g = MakePower(3.0);
  const double rhs =
      std::pow(static_cast<double>(r.y / r.x), 2.0 + options.alpha) *
      std::pow(static_cast<double>(r.x), options.alpha) * g->Value(r.x);
  EXPECT_GT(g->Value(r.y), rhs);
}

TEST(PropertyCheckerTest, SmallDomainStillWorksForClearCases) {
  PropertyCheckOptions options;
  options.domain_max = 1 << 14;
  EXPECT_TRUE(CheckSlowJumping(*MakePower(2.0), options).holds);
  EXPECT_FALSE(CheckSlowJumping(*MakePower(3.0), options).holds);
  EXPECT_TRUE(CheckSlowDropping(*MakePower(2.0), options).holds);
  EXPECT_FALSE(CheckSlowDropping(*MakeInversePoly(0.5), options).holds);
}

TEST(PropertyCheckerTest, DeterministicAcrossRuns) {
  PropertyCheckOptions options;
  options.domain_max = 1 << 14;
  const PropertyResult a = CheckPredictable(*MakeSinModulated(), options);
  const PropertyResult b = CheckPredictable(*MakeSinModulated(), options);
  EXPECT_EQ(a.holds, b.holds);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

}  // namespace
}  // namespace gstream
