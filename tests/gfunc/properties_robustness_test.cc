// Robustness of the property checkers: the clear-cut catalog verdicts must
// be stable across probe parameters (alpha, seed, random-pair budget, and
// reasonable domain sizes).  These tests guard the finite-domain
// instantiation of the asymptotic definitions (DESIGN.md substitution
// table) against threshold brittleness.

#include <gtest/gtest.h>

#include "gfunc/properties.h"
#include "gfunc/catalog.h"

namespace gstream {
namespace {

struct Probe {
  double alpha;
  uint64_t seed;
  size_t random_pairs;
};

class CheckerRobustness : public ::testing::TestWithParam<Probe> {};

TEST_P(CheckerRobustness, QuadraticAlwaysSlowJumping) {
  const Probe p = GetParam();
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  options.alpha = p.alpha;
  options.seed = p.seed;
  options.random_pairs = p.random_pairs;
  EXPECT_TRUE(CheckSlowJumping(*MakePower(2.0), options).holds);
  EXPECT_TRUE(CheckSlowDropping(*MakePower(2.0), options).holds);
}

TEST_P(CheckerRobustness, CubicNeverSlowJumping) {
  const Probe p = GetParam();
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  options.alpha = p.alpha;
  options.seed = p.seed;
  options.random_pairs = p.random_pairs;
  EXPECT_FALSE(CheckSlowJumping(*MakePower(3.0), options).holds);
}

TEST_P(CheckerRobustness, InverseNeverSlowDropping) {
  const Probe p = GetParam();
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  options.alpha = p.alpha;
  options.seed = p.seed;
  options.random_pairs = p.random_pairs;
  EXPECT_FALSE(CheckSlowDropping(*MakeInversePoly(1.0), options).holds);
}

TEST_P(CheckerRobustness, GnpNeverSlowDropping) {
  const Probe p = GetParam();
  PropertyCheckOptions options;
  options.domain_max = 1 << 16;
  options.alpha = p.alpha;
  options.seed = p.seed;
  options.random_pairs = p.random_pairs;
  EXPECT_FALSE(CheckSlowDropping(*MakeGnp(), options).holds);
}

INSTANTIATE_TEST_SUITE_P(
    ProbeGrid, CheckerRobustness,
    // alpha below ~0.2 would need a deeper domain: x^2's adjacent-pair
    // violations of Def. 6 die out only at x ~ 4^{1/alpha}, which must sit
    // below the persistence cutoff (DESIGN.md substitution table).
    ::testing::Values(Probe{0.25, 0x5eed, 50000}, Probe{0.25, 7, 50000},
                      Probe{0.25, 0x5eed, 5000}, Probe{0.4, 0x5eed, 50000},
                      Probe{0.2, 99, 20000}),
    [](const ::testing::TestParamInfo<Probe>& info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "alpha%02d_seed%llu_pairs%zu",
                    static_cast<int>(info.param.alpha * 100),
                    static_cast<unsigned long long>(info.param.seed),
                    info.param.random_pairs);
      return std::string(buf);
    });

// Domain-size stability for the unambiguous functions: verdicts should not
// flip between 2^14 and 2^18 for functions whose violating pairs (or lack
// thereof) appear at every scale.
class DomainStability : public ::testing::TestWithParam<int> {};

TEST_P(DomainStability, StableVerdicts) {
  PropertyCheckOptions options;
  options.domain_max = int64_t{1} << GetParam();
  EXPECT_TRUE(CheckSlowJumping(*MakePower(1.0), options).holds);
  EXPECT_TRUE(CheckSlowDropping(*MakeIndicator(), options).holds);
  EXPECT_TRUE(CheckPredictable(*MakePower(2.0), options).holds);
  EXPECT_FALSE(CheckSlowJumping(*MakePower(3.0), options).holds);
  EXPECT_FALSE(CheckSlowDropping(*MakeInversePoly(0.5), options).holds);
  EXPECT_FALSE(CheckPredictable(*MakeSinModulated(), options).holds);
}

INSTANTIATE_TEST_SUITE_P(Domains, DomainStability,
                         ::testing::Values(14, 16, 18),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "pow2_" + std::to_string(info.param);
                         });

// The nearly periodic screen must be stable too.
class NearlyPeriodicStability : public ::testing::TestWithParam<int> {};

TEST_P(NearlyPeriodicStability, GnpAlwaysPasses) {
  PropertyCheckOptions options;
  options.domain_max = int64_t{1} << GetParam();
  EXPECT_TRUE(CheckNearlyPeriodic(*MakeGnp(), options).holds);
  EXPECT_FALSE(CheckNearlyPeriodic(*MakeInversePoly(1.0), options).holds);
}

INSTANTIATE_TEST_SUITE_P(Domains, NearlyPeriodicStability,
                         ::testing::Values(14, 16, 18),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "pow2_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gstream
