// Statistical verification of the end-to-end g-SUM guarantee, engine-fed
// runs included.
//
// The engine tests pin sharded == sequential bit-exactly in the no-pruning
// regime; this suite pins the *accuracy guarantee* in the realistic
// pruning regime, where whole-stack sharding is only statistically (not
// bit-) equivalent: over >= 12 seeds each of Zipfian and
// adversarial-deletion turnstile streams, half run sequentially and half
// through whole-stack sharded ingestion (GSumOptions::parallel_ingest,
// alternating partition policies and shard counts 2..8),
//
//   (1) ACCURACY: the median relative error per (family, ingest mode)
//       bucket stays within the configured eps target -- the operating
//       accuracy the repo's gsum tests pin for the sequential path, now
//       required of the engine-fed path too;
//   (2) TAIL: the fraction of runs whose error exceeds 2x the target is
//       reported and checked against the configured delta budget (the
//       median-of-repetitions amplification makes gross failures rare);
//   (3) PARITY: engine-fed runs must not be systematically worse than
//       sequential runs -- the median-error gap between the two modes
//       stays within the noise band.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/gsum.h"
#include "gfunc/catalog.h"
#include "stream/exact.h"
#include "stream/generators.h"
#include "util/stats.h"

namespace gstream {
namespace {

constexpr uint64_t kBaseSeed = 0x95d0;
constexpr size_t kSeedsPerFamily = 12;
// Operating accuracy of the configured estimator (median-of-5 repetitions;
// the same target tests/core/gsum_test.cc pins sequentially).
constexpr double kEpsTarget = 0.3;
// Budget for runs past 2x the target across the whole suite.
constexpr double kDeltaBudget = 0.1;

enum class Family { kZipf, kAdversarialDeletion };

const char* FamilyName(Family f) {
  return f == Family::kZipf ? "zipf" : "adversarial_deletion";
}

Workload MakeFamilyWorkload(Family family, uint64_t seed) {
  Rng rng(seed);
  StreamShapeOptions shape;
  shape.churn_pairs = 300;
  switch (family) {
    case Family::kZipf:
      return MakeZipfWorkload(1 << 13, 1000, 1.5, 30000, shape, rng);
    case Family::kAdversarialDeletion: {
      // A skewed net vector plus decoys pumped far above every true heavy
      // item and deleted back to a light frequency: per-level trackers
      // must evict mid-stream "heavies" at every subsampling depth.
      Workload w = MakeZipfWorkload(1 << 13, 800, 1.4, 20000, shape, rng);
      for (ItemId d = 6000; d < 6010; ++d) w.stream.Append(d, 50000);
      for (ItemId d = 6000; d < 6010; ++d) {
        w.stream.Append(d, -49997);
        // Net +3 *on top of* whatever Zipf frequency the generator may
        // already have placed at this id -- the decoy ids are random Zipf
        // placements' neighbors, so collisions do happen.
        w.frequencies[d] += 3;
      }
      return w;
    }
  }
  std::abort();  // unreachable
}

struct ModeStats {
  std::vector<double> errors;
  size_t tail_failures = 0;  // error > 2 * kEpsTarget
};

void RunFamily(Family family, ModeStats& sequential, ModeStats& engine_fed) {
  const GFunctionPtr g = MakePower(2.0);
  for (size_t s = 0; s < kSeedsPerFamily; ++s) {
    const uint64_t seed = kBaseSeed + 1000 * static_cast<uint64_t>(family) +
                          s;
    const Workload w = MakeFamilyWorkload(family, seed);
    const double truth = ExactGSum(w.frequencies, g->AsCallable());
    const bool sharded = (s % 2 == 1);

    GSumOptions options;
    options.passes = 1;
    options.cs_buckets = 1024;
    options.candidates = 48;
    options.repetitions = 5;
    options.ams = {32, 5};
    options.seed = seed;
    if (sharded) {
      options.parallel_ingest = true;
      options.ingest_shards = 2 + (s / 2) % 7;  // 2..8
      options.ingest_policy = (s % 4 == 1) ? PartitionPolicy::kHashItem
                                           : PartitionPolicy::kRoundRobinChunks;
    }
    GSumEstimator estimator(g, w.stream.domain(), options);
    const double estimate = estimator.Process(w.stream);
    const double error = RelativeError(estimate, truth);

    ModeStats& stats = sharded ? engine_fed : sequential;
    stats.errors.push_back(error);
    if (error > 2.0 * kEpsTarget) {
      ++stats.tail_failures;
      ADD_FAILURE() << FamilyName(family) << " seed " << s
                    << (sharded ? " (engine-fed)" : " (sequential)")
                    << ": relative error " << error << " past 2x target "
                    << 2.0 * kEpsTarget;
    }
  }
}

TEST(GSumVerificationTest, EngineFedAccuracyMatchesConfiguredTarget) {
  ModeStats sequential, engine_fed;
  RunFamily(Family::kZipf, sequential, engine_fed);
  RunFamily(Family::kAdversarialDeletion, sequential, engine_fed);

  ASSERT_FALSE(sequential.errors.empty());
  ASSERT_FALSE(engine_fed.errors.empty());
  const double seq_median = Median(sequential.errors);
  const double eng_median = Median(engine_fed.errors);

  // (1) Accuracy per ingest mode.
  EXPECT_LE(seq_median, kEpsTarget);
  EXPECT_LE(eng_median, kEpsTarget);

  // (2) Tail failures against the configured budget, over all runs.
  const size_t runs = sequential.errors.size() + engine_fed.errors.size();
  const double tail_rate =
      static_cast<double>(sequential.tail_failures +
                          engine_fed.tail_failures) /
      static_cast<double>(runs);
  EXPECT_LE(tail_rate, kDeltaBudget);

  // (3) Whole-stack sharding must not systematically degrade the decode:
  // the candidate-union merges may admit different borderline candidates
  // than the sequential maintenance trajectory, but the median error gap
  // stays within the noise band.
  EXPECT_LE(eng_median, seq_median + 0.1);

  std::printf(
      "gsum verify: %zu runs (%zu sequential, %zu engine-fed), median error "
      "%.4f sequential vs %.4f engine-fed (target %.2f), tail rate %.4f "
      "(budget %.2f)\n",
      runs, sequential.errors.size(), engine_fed.errors.size(), seq_median,
      eng_median, kEpsTarget, tail_rate, kDeltaBudget);
  RecordProperty("sequential_median_error_x1e4",
                 static_cast<int>(seq_median * 1e4));
  RecordProperty("engine_fed_median_error_x1e4",
                 static_cast<int>(eng_median * 1e4));
}

}  // namespace
}  // namespace gstream
