// Statistical verification of the heavy-hitter guarantees, end to end.
//
// The unit tests pin bit-exactness (batch == single, sharded == sequential)
// and anecdotal recall on one seed; this suite pins the *guarantees*:
// over >= 20 seeds each of Zipfian, uniform, and adversarial-deletion
// turnstile streams,
//
//   (1) RECALL: every true (g, lambda)-heavy hitter (Definition 11,
//       computed exactly from the frequency vector) appears in the cover
//       of both the two-pass (Algorithm 1) and one-pass (Algorithm 2)
//       algorithms, with zero misses tolerated across all seeds;
//   (2) PRUNING THRESHOLD: no one-pass survivor reports an estimate at or
//       below the pruning radius E -- an item the stability test could not
//       certify must not appear (for the predictable g = x^2 any estimate
//       <= E fails some probe);
//   (3) WEIGHTS: two-pass weights are exact (eps = 0); one-pass estimates
//       stay within the CountSketch error bound 4 sqrt(F2 / b) of the true
//       frequency, a per-item event of probability >> 1 - kDelta whose
//       measured failure rate is reported against the configured kDelta.
//
// Half the seeds run through the sharded ingestion engine
// (parallel_ingest), so the statistical guarantees are exercised on the
// engine-fed path too, not just the sequential one.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "core/one_pass_hh.h"
#include "core/two_pass_hh.h"
#include "gfunc/catalog.h"
#include "stream/exact.h"
#include "stream/generators.h"

namespace gstream {
namespace {

constexpr uint64_t kBaseSeed = 0x5a7e;
constexpr size_t kSeedsPerFamily = 20;
constexpr double kLambda = 0.05;  // heaviness threshold of Definition 11
// Configured per-entry failure budget for the statistical (high-
// probability, not deterministic) estimate-accuracy check.
constexpr double kDelta = 0.05;

struct SuiteStats {
  size_t runs = 0;
  size_t true_heavy_total = 0;
  size_t two_pass_misses = 0;
  size_t one_pass_misses = 0;
  size_t one_pass_entries = 0;
  size_t threshold_violations = 0;   // survivors at/below the pruning radius
  size_t accuracy_violations = 0;    // |v_hat - v| beyond 4 sqrt(F2/b)
};

enum class Family { kZipf, kUniform, kAdversarialDeletion };

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kZipf: return "zipf";
    case Family::kUniform: return "uniform";
    case Family::kAdversarialDeletion: return "adversarial_deletion";
  }
  return "?";
}

// Zipfian / uniform streams with turnstile churn; the adversarial family
// additionally pumps 20 decoy items far above every true heavy hitter and
// then deletes them back to a light frequency, so the trackers must evict
// mid-stream "heavies" whose final frequency is small.
Workload MakeFamilyWorkload(Family family, uint64_t seed) {
  Rng rng(seed);
  StreamShapeOptions shape;
  shape.churn_pairs = 250;
  switch (family) {
    case Family::kZipf:
      return MakeZipfWorkload(1 << 12, 400, 1.3, 50000, shape, rng);
    case Family::kUniform:
      return MakeUniformWorkload(1 << 12, 500, 1, 200, shape, rng);
    case Family::kAdversarialDeletion: {
      FrequencyMap freq;
      for (ItemId i = 0; i < 250; ++i) {
        freq[i] = 1 + static_cast<int64_t>(i % 5);
      }
      freq[3000] = 25000;
      freq[3001] = 18000;
      Workload w = MakeStreamFromFrequencies(1 << 12, freq, shape, rng);
      // Decoys: inflated above every true heavy, then deleted to net 5.
      for (ItemId d = 3500; d < 3520; ++d) w.stream.Append(d, 40000);
      for (ItemId d = 3500; d < 3520; ++d) {
        w.stream.Append(d, -39995);
        w.frequencies[d] = 5;
      }
      return w;
    }
  }
  std::abort();  // unreachable: all Family values handled above
}

int64_t TrueFrequency(const FrequencyMap& freq, ItemId item) {
  const auto it = freq.find(item);
  return it == freq.end() ? 0 : it->second;
}

void RunFamily(Family family, SuiteStats& stats) {
  const GFunctionPtr g = MakePower(2.0);
  for (size_t s = 0; s < kSeedsPerFamily; ++s) {
    const uint64_t seed = kBaseSeed + 1000 * static_cast<uint64_t>(family) +
                          s;
    const Workload w = MakeFamilyWorkload(family, seed);
    const auto true_heavy =
        ExactGHeavyHitters(w.frequencies, g->AsCallable(), kLambda);
    const double f2_true = ExactMoment(w.frequencies, 2.0);
    // Every other seed routes through the sharded ingestion engine.
    const bool sharded = (s % 2 == 1);

    // --- Two-pass (Algorithm 1): recall with exact weights. ---
    TwoPassHHOptions two_pass;
    two_pass.count_sketch = {5, 1024};
    two_pass.candidates = 32;
    two_pass.parallel_ingest = sharded;
    two_pass.ingest_shards = 3;
    const TwoPassHeavyHitter hh2 = ProcessTwoPassHH(two_pass, seed, w.stream);
    std::unordered_set<ItemId> covered2;
    for (const GCoverEntry& e : hh2.Cover(*g)) {
      covered2.insert(e.item);
      EXPECT_EQ(e.frequency, TrueFrequency(w.frequencies, e.item))
          << FamilyName(family) << " seed " << s
          << ": two-pass tabulation not exact for item " << e.item;
    }
    for (const auto& [item, value] : true_heavy) {
      if (!covered2.contains(item)) {
        ++stats.two_pass_misses;
        ADD_FAILURE() << FamilyName(family) << " seed " << s
                      << ": two-pass missed true heavy hitter " << item
                      << " (v=" << value << ")";
      }
    }

    // --- One-pass (Algorithm 2): recall, pruning threshold, accuracy. ---
    OnePassHHOptions one_pass;
    one_pass.count_sketch = {5, 4096};
    one_pass.ams = {32, 5};
    one_pass.candidates = 32;
    one_pass.epsilon = 0.25;
    one_pass.h_envelope = 1.0;
    one_pass.parallel_ingest = sharded;
    one_pass.ingest_shards = 3;
    const OnePassHeavyHitter hh1 = ProcessOnePassHH(one_pass, seed, w.stream);
    const int64_t radius = hh1.PruningRadius();
    const double err_bound = 4.0 * std::sqrt(
        f2_true / static_cast<double>(one_pass.count_sketch.buckets));
    std::unordered_set<ItemId> covered1;
    for (const GCoverEntry& e : hh1.Cover(*g)) {
      covered1.insert(e.item);
      ++stats.one_pass_entries;
      // (2) No survivor at or below the pruning radius: g = x^2 cannot be
      // certified stable on an interval containing 0.
      if (radius > 0 && std::llabs(e.frequency) <= radius) {
        ++stats.threshold_violations;
        ADD_FAILURE() << FamilyName(family) << " seed " << s << ": item "
                      << e.item << " survived with |estimate| "
                      << std::llabs(e.frequency)
                      << " <= pruning radius " << radius;
      }
      // (3) Statistical: the estimate is within the CountSketch error
      // bound of the truth (rate checked against kDelta at the end).
      const double err = std::fabs(
          static_cast<double>(e.frequency) -
          static_cast<double>(TrueFrequency(w.frequencies, e.item)));
      if (err > err_bound) ++stats.accuracy_violations;
    }
    for (const auto& [item, value] : true_heavy) {
      if (!covered1.contains(item)) {
        ++stats.one_pass_misses;
        ADD_FAILURE() << FamilyName(family) << " seed " << s
                      << ": one-pass missed true heavy hitter " << item
                      << " (v=" << value << ")";
      }
    }

    ++stats.runs;
    stats.true_heavy_total += true_heavy.size();
  }
}

TEST(HHVerificationTest, RecallAndPruningGuaranteesAcrossSeeds) {
  SuiteStats stats;
  RunFamily(Family::kZipf, stats);
  RunFamily(Family::kUniform, stats);
  RunFamily(Family::kAdversarialDeletion, stats);

  // (1) Zero tolerance on recall, per the paper's guarantee for a
  // predictable g (Lemma 21 / Theorem 3).
  EXPECT_EQ(stats.two_pass_misses, 0u);
  EXPECT_EQ(stats.one_pass_misses, 0u);
  // (2) Zero tolerance on the pruning threshold (deterministic property of
  // the decode for g = x^2).
  EXPECT_EQ(stats.threshold_violations, 0u);
  // (3) Measured failure rate of the statistical accuracy check, reported
  // against the configured delta.
  const double measured_rate =
      stats.one_pass_entries == 0
          ? 0.0
          : static_cast<double>(stats.accuracy_violations) /
                static_cast<double>(stats.one_pass_entries);
  EXPECT_LE(measured_rate, kDelta)
      << stats.accuracy_violations << " of " << stats.one_pass_entries
      << " one-pass estimates exceeded the 4 sqrt(F2/b) bound";

  RecordProperty("runs", static_cast<int>(stats.runs));
  RecordProperty("true_heavy_total",
                 static_cast<int>(stats.true_heavy_total));
  RecordProperty("one_pass_entries",
                 static_cast<int>(stats.one_pass_entries));
  RecordProperty("accuracy_violations",
                 static_cast<int>(stats.accuracy_violations));
  std::printf(
      "verify: %zu runs, %zu true heavy hitters, 0 missed (2-pass and "
      "1-pass); %zu one-pass cover entries, %zu past the error bound "
      "(measured rate %.4f vs configured delta %.2f)\n",
      stats.runs, stats.true_heavy_total, stats.one_pass_entries,
      stats.accuracy_violations, measured_rate, kDelta);
}

// The merged decode must satisfy the same guarantees as the sequential one
// on the *same* stream -- a direct A/B at every shard count on one seed
// per family, pinning that engine-fed heavy hitters lose nothing.
TEST(HHVerificationTest, ShardedDecodeRecallMatchesSequential) {
  const GFunctionPtr g = MakePower(2.0);
  for (const Family family : {Family::kZipf, Family::kAdversarialDeletion}) {
    const uint64_t seed = kBaseSeed + 77 + static_cast<uint64_t>(family);
    const Workload w = MakeFamilyWorkload(family, seed);
    const auto true_heavy =
        ExactGHeavyHitters(w.frequencies, g->AsCallable(), kLambda);
    ASSERT_FALSE(true_heavy.empty());
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      TwoPassHHOptions options;
      options.count_sketch = {5, 1024};
      options.candidates = 32;
      options.parallel_ingest = true;
      options.ingest_shards = shards;
      const TwoPassHeavyHitter hh = ProcessTwoPassHH(options, seed, w.stream);
      std::unordered_set<ItemId> covered;
      for (const GCoverEntry& e : hh.Cover(*g)) covered.insert(e.item);
      for (const auto& [item, value] : true_heavy) {
        EXPECT_TRUE(covered.contains(item))
            << FamilyName(family) << " shards " << shards
            << ": merged decode missed heavy item " << item;
      }
    }
  }
}

}  // namespace
}  // namespace gstream
